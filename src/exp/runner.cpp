#include "reissue/exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "reissue/core/optimizer.hpp"
#include "reissue/obs/counters.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/stats/psquare.hpp"
#include "reissue/stats/rng.hpp"
#include "reissue/stats/summary.hpp"
#include "reissue/stats/tail_summary.hpp"

namespace reissue::exp {

namespace {

/// Child seed of `parent` for stream index `index` (deterministic, no
/// shared state: usable from any thread in any order).
std::uint64_t substream(std::uint64_t parent, std::uint64_t index) {
  stats::SplitMix64 sm(parent + 0x9e3779b97f4a7c15ull * (index + 1));
  return sm.next();
}

std::uint64_t scenario_stream(std::uint64_t root, std::string_view scenario) {
  stats::SplitMix64 sm(root ^ stats::stream_label(scenario));
  return sm.next();
}

/// One unit of worker scheduling: replications [rep_begin, rep_end) of one
/// cell.  Cell-granular scheduling emits one task per cell spanning all
/// replications; replication-granular scheduling emits width-1 tasks.
struct Task {
  std::size_t cell = 0;
  std::size_t scenario = 0;
  std::size_t rep_begin = 0;
  std::size_t rep_end = 0;
  const PolicySpec* policy = nullptr;
};

/// Streaming accumulator for one measurement run (core::LogMode::
/// kStreaming): the X stream goes straight into a TailSummary, never
/// materialized; only the budget-bounded reissue triples are kept, because
/// the remediation rate needs them against the tail estimate known only at
/// the end.
class StreamingMetricsObserver final : public core::RunObserver {
 public:
  StreamingMetricsObserver(double k, const core::ReissuePolicy& policy)
      : latency_(k),
        single_stage_(policy.stage_count() == 1),
        stage_delay_(single_stage_ ? policy.delay() : 0.0) {}

  void on_query(double latency, double primary) override {
    latency_.add(latency);
    if (single_stage_ && primary > stage_delay_) ++primaries_over_delay_;
  }

  void on_reissue(double primary, double response, double delay,
                  bool cancelled) override {
    if (cancelled) return;  // no real Y observation
    reissues_.push_back(ReissueTriple{primary, response, delay});
  }

  void on_complete(std::size_t queries, std::size_t reissues_issued,
                   double utilization) override {
    queries_ = queries;
    reissues_issued_ = reissues_issued;
    utilization_ = utilization;
  }

  void fill(ReplicationMetrics& metrics) const {
    metrics.tail = latency_.quantile();
    metrics.tail_psquare = latency_.psquare();
    metrics.mean_latency = latency_.mean();
    metrics.reissue_rate =
        queries_ == 0 ? 0.0
                      : static_cast<double>(reissues_issued_) /
                            static_cast<double>(queries_);
    metrics.utilization = utilization_;
    if (!reissues_.empty()) {
      std::size_t remediated = 0;
      for (const auto& triple : reissues_) {
        if (triple.primary > metrics.tail &&
            triple.response < metrics.tail - triple.delay) {
          ++remediated;
        }
      }
      metrics.remediation = static_cast<double>(remediated) /
                            static_cast<double>(reissues_.size());
    }
    if (single_stage_ && latency_.count() > 0) {
      metrics.outstanding_at_delay =
          static_cast<double>(primaries_over_delay_) /
          static_cast<double>(latency_.count());
    }
  }

 private:
  struct ReissueTriple {
    double primary;
    double response;
    double delay;
  };

  stats::TailSummary latency_;
  bool single_stage_;
  double stage_delay_;
  std::size_t primaries_over_delay_ = 0;
  std::vector<ReissueTriple> reissues_;
  std::size_t queries_ = 0;
  std::size_t reissues_issued_ = 0;
  double utilization_ = 0.0;
};

}  // namespace

ReplicationMetrics run_cell_replication(core::SystemUnderTest& system,
                                        const PolicySpec& spec, double k,
                                        std::uint64_t seed,
                                        core::LogMode mode,
                                        obs::PhaseTimers* timers) {
  core::ReissuePolicy policy = core::ReissuePolicy::none();
  switch (spec.kind) {
    // Tuned and optimal specs resolve by running on the system itself;
    // those phases always consume full logs (the optimizer needs the X/Y
    // distributions), so `mode` governs only the measurement run below.
    case PolicySpec::Kind::kFixed:
      policy = spec.fixed;
      break;
    case PolicySpec::Kind::kTunedSingleR: {
      obs::PhaseTimer scope(timers, "train");
      policy = sim::tune_single_r(system, k, spec.budget, spec.trials)
                   .outcome.policy;
      break;
    }
    case PolicySpec::Kind::kTunedSingleD: {
      obs::PhaseTimer scope(timers, "train");
      policy = sim::tune_single_d(system, k, spec.budget, spec.trials)
                   .outcome.policy;
      break;
    }
    case PolicySpec::Kind::kOptimalSingleR:
    case PolicySpec::Kind::kOptimalSingleD: {
      // §4.1/§4.2 optimizer in the loop: train on the replication's own
      // training substream, then restore `seed` so the measured run shares
      // the cell's common random numbers with every other policy.
      const auto reseed_to = [&](std::uint64_t s) {
        if (!system.reseed(s)) {
          throw std::runtime_error(
              "run_cell_replication: optimal:* policy specs need a system "
              "that supports reseeding");
        }
      };
      reseed_to(training_seed(seed));
      // The plain variants observe the unperturbed baseline; the §4.2
      // variant needs real (X, Y) joint observations, so it probes with
      // the paper's P0 = SingleR(0, B) (§4.3) and never exceeds budget.
      const bool correlated =
          spec.kind == PolicySpec::Kind::kOptimalSingleR && spec.correlated;
      const core::ReissuePolicy probe =
          correlated
              ? core::ReissuePolicy::single_r(0.0, std::min(spec.budget, 1.0))
              : core::ReissuePolicy::none();
      core::RunResult train;
      {
        obs::PhaseTimer scope(timers, "train");
        train = system.run(probe);
      }
      {
        obs::PhaseTimer scope(timers, "optimize");
        if (spec.kind == PolicySpec::Kind::kOptimalSingleR) {
          policy = core::optimize_single_r_from_run(train, k, spec.budget,
                                                    correlated, spec.train)
                       .policy();
        } else {
          policy =
              core::optimal_single_d_from_run(train, spec.budget, spec.train);
        }
      }
      reseed_to(seed);
      break;
    }
  }

  ReplicationMetrics metrics;
  metrics.seed = seed;
  metrics.policy = policy;

  if (mode == core::LogMode::kStreaming ||
      mode == core::LogMode::kStreamingUnordered) {
    obs::PhaseTimer scope(timers, "evaluate");
    StreamingMetricsObserver observer(k, policy);
    // Same accumulators either way; completion-order delivery feeds them
    // from inside the event loop (no replay pass).  Every accumulator but
    // the P² sketch and the FP-summation mean is order-insensitive, so
    // those two columns are the only ones that differ between the modes.
    if (mode == core::LogMode::kStreaming) {
      system.run_streaming(policy, observer);
    } else {
      system.run_streaming_unordered(policy, observer);
    }
    observer.fill(metrics);
    return metrics;
  }

  obs::PhaseTimer scope(timers, "evaluate");
  const core::RunResult result = system.run(policy);
  metrics.tail = result.tail_latency(k);
  stats::PSquareQuantile sketch(k);
  stats::RunningStats latency;
  for (double x : result.query_latencies) {
    sketch.add(x);
    latency.add(x);
  }
  metrics.tail_psquare = sketch.estimate();
  metrics.mean_latency = latency.mean();
  metrics.reissue_rate = result.measured_reissue_rate();
  metrics.remediation = result.remediation_rate(metrics.tail);
  metrics.utilization = result.utilization;
  if (policy.stage_count() == 1) {
    metrics.outstanding_at_delay = result.primary_cdf().tail(policy.delay());
  }
  return metrics;
}

std::uint64_t replication_seed(std::uint64_t root, std::string_view scenario,
                               std::size_t replication) {
  return substream(scenario_stream(root, scenario), replication + 1);
}

std::uint64_t construction_seed(std::uint64_t root,
                                std::string_view scenario) {
  return substream(scenario_stream(root, scenario), 0);
}

std::uint64_t training_seed(std::uint64_t replication) {
  stats::SplitMix64 sm(replication ^ stats::stream_label("optimal-train"));
  return sm.next();
}

std::vector<CellRef> enumerate_cells(const std::vector<ScenarioSpec>& scenarios,
                                     const SweepOptions& options) {
  if (options.replications == 0) {
    throw std::invalid_argument("run_sweep: replications must be >= 1");
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioSpec& spec = scenarios[i];
    if (spec.policies.empty()) {
      throw std::invalid_argument("run_sweep: scenario '" + spec.name +
                                  "' has an empty policy grid");
    }
    // Seed substreams derive from the scenario name, so duplicate names
    // would silently share RNG streams (breaking the independent-
    // replication assumption) and emit indistinguishable CSV rows.
    for (std::size_t j = i + 1; j < scenarios.size(); ++j) {
      if (scenarios[j].name == spec.name) {
        throw std::invalid_argument("run_sweep: duplicate scenario name '" +
                                    spec.name + "'");
      }
    }
  }

  std::vector<CellRef> cells;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const ScenarioSpec& spec = scenarios[s];
    const double k =
        options.percentile > 0.0 ? options.percentile : spec.percentile;
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      cells.push_back(CellRef{s, p, k});
    }
  }
  return cells;
}

std::vector<CellResult> run_sweep(const std::vector<ScenarioSpec>& scenarios,
                                  const SweepOptions& options) {
  const std::vector<CellRef> plan = enumerate_cells(scenarios, options);

  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  // Scheduling granularity (see the header): whole cells when there are
  // enough of them to keep every worker busy — each cell's replications
  // then run back-to-back on one worker, reusing its cached system and
  // warm simulation scratch — else per-replication tasks.  Per-cell stats
  // require cell granularity (counters are attributed per cell).
  const bool cell_granular =
      options.on_cell_stats != nullptr || plan.size() >= threads;

  // Lay out cells in plan order, then fan the tasks.
  std::vector<CellResult> cells;
  std::vector<Task> tasks;
  for (const CellRef& ref : plan) {
    const ScenarioSpec& spec = scenarios[ref.scenario];
    CellResult cell;
    cell.scenario = spec.name;
    cell.policy = to_string(spec.policies[ref.policy]);
    cell.percentile = ref.percentile;
    cell.replications.resize(options.replications);
    const std::size_t cell_index = cells.size();
    cells.push_back(std::move(cell));
    if (cell_granular) {
      tasks.push_back(Task{cell_index, ref.scenario, 0, options.replications,
                           &spec.policies[ref.policy]});
    } else {
      for (std::size_t r = 0; r < options.replications; ++r) {
        tasks.push_back(Task{cell_index, ref.scenario, r, r + 1,
                             &spec.policies[ref.policy]});
      }
    }
  }

  threads = std::min(threads, tasks.size());

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Progress bookkeeping: a cell is done when its last replication lands,
  // whichever worker ran it.
  std::unique_ptr<std::atomic<std::size_t>[]> cell_remaining;
  std::atomic<std::size_t> cells_done{0};
  if (options.on_cell_done) {
    cell_remaining =
        std::make_unique<std::atomic<std::size_t>[]>(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      cell_remaining[c].store(options.replications,
                              std::memory_order_relaxed);
    }
  }

  // Each worker keeps its own system per scenario (constructed with the
  // replication-independent construction seed) and reseeds it per task, so
  // results do not depend on which worker runs which task.
  auto worker = [&] {
    std::unordered_map<std::size_t, std::unique_ptr<core::SystemUnderTest>>
        cache;
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) return;
      const Task& task = tasks[t];
      try {
        const ScenarioSpec& spec = scenarios[task.scenario];
        auto& system = cache[task.scenario];
        if (!system) {
          system =
              make_system(spec, construction_seed(options.seed, spec.name));
          // Passive observation of simulated scenarios; non-Cluster
          // systems (live bridges) simply stay unobserved.
          if (options.sim_observer != nullptr) {
            if (auto* cluster = dynamic_cast<sim::Cluster*>(system.get())) {
              cluster->set_sim_observer(options.sim_observer);
            }
          }
        }
        // Per-cell counter attribution: chain a cell-local accumulator
        // behind the sweep-wide observer for the duration of this task
        // (cell-granular by construction when on_cell_stats is set).
        // Observation is passive, so the chain never changes results.
        obs::CountingObserver cell_counters;
        obs::MultiObserver cell_chain;
        sim::Cluster* cluster = nullptr;
        if (options.on_cell_stats) {
          cluster = dynamic_cast<sim::Cluster*>(system.get());
          if (cluster != nullptr) {
            cell_chain.add(options.sim_observer);
            cell_chain.add(&cell_counters);
            cluster->set_sim_observer(&cell_chain);
          }
        }
        for (std::size_t r = task.rep_begin; r < task.rep_end; ++r) {
          const std::uint64_t seed =
              replication_seed(options.seed, spec.name, r);
          if (!system->reseed(seed)) {
            throw std::runtime_error("run_sweep: scenario '" + spec.name +
                                     "' system does not support reseeding");
          }
          cells[task.cell].replications[r] =
              run_cell_replication(*system, *task.policy,
                                   cells[task.cell].percentile, seed,
                                   options.log_mode, options.timers);
        }
        if (cluster != nullptr) {
          cluster->set_sim_observer(options.sim_observer);
        }
        const std::size_t width = task.rep_end - task.rep_begin;
        const bool cell_finished =
            !cell_remaining ||
            cell_remaining[task.cell].fetch_sub(
                width, std::memory_order_acq_rel) == width;
        if (cell_finished && options.on_cell_stats) {
          options.on_cell_stats(cells[task.cell], cell_counters.total(),
                                cell_counters.runs());
        }
        if (cell_finished && options.on_cell_done) {
          const std::size_t done =
              cells_done.fetch_add(1, std::memory_order_acq_rel) + 1;
          options.on_cell_done(done, cells.size());
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(tasks.size(), std::memory_order_relaxed);  // stop early
        return;
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return cells;
}

}  // namespace reissue::exp
