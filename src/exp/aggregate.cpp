#include "reissue/exp/aggregate.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "reissue/exp/scenario.hpp"

namespace reissue::exp {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

}  // namespace

CellStats aggregate_cell(const CellResult& cell) {
  if (cell.replications.empty()) {
    throw std::invalid_argument("aggregate_cell: no replications");
  }
  CellStats stats;
  stats.scenario = cell.scenario;
  stats.policy = cell.policy;
  stats.percentile = cell.percentile;
  stats.replications = cell.replications.size();

  stats::RunningStats tails;
  stats::RunningStats sketches;
  stats::RunningStats means;
  stats::RunningStats rates;
  stats::RunningStats remediations;
  stats::RunningStats utilizations;
  stats::RunningStats outstanding;
  stats::RunningStats delays;
  stats::RunningStats probabilities;
  for (const auto& rep : cell.replications) {
    tails.add(rep.tail);
    sketches.add(rep.tail_psquare);
    means.add(rep.mean_latency);
    rates.add(rep.reissue_rate);
    remediations.add(rep.remediation);
    utilizations.add(rep.utilization);
    outstanding.add(rep.outstanding_at_delay);
    if (rep.policy.stage_count() == 1) {
      delays.add(rep.policy.delay());
      probabilities.add(rep.policy.probability());
    }
  }
  stats.tail = stats::mean_ci95(tails);
  stats.tail_stddev = tails.stddev();
  stats.tail_psquare = sketches.mean();
  stats.mean_latency = means.mean();
  stats.reissue_rate = rates.mean();
  stats.remediation = remediations.mean();
  stats.utilization = utilizations.mean();
  stats.outstanding_at_delay = outstanding.mean();
  stats.delay = stats::mean_ci95(delays);
  stats.probability = stats::mean_ci95(probabilities);
  return stats;
}

std::vector<CellStats> aggregate(const std::vector<CellResult>& cells) {
  std::vector<CellStats> out;
  out.reserve(cells.size());
  for (const auto& cell : cells) out.push_back(aggregate_cell(cell));
  return out;
}

std::string csv_header() {
  return "scenario,policy,percentile,replications,tail_mean,tail_ci_lo,"
         "tail_ci_hi,tail_stddev,tail_p2,mean_latency,reissue_rate,"
         "remediation,utilization,outstanding,delay_mean,delay_ci_lo,"
         "delay_ci_hi,probability_mean,probability_ci_lo,probability_ci_hi";
}

std::string csv_row(const CellStats& stats) {
  std::string row;
  row += stats.scenario;
  row += ',';
  row += stats.policy;
  row += ',';
  row += fmt(stats.percentile);
  row += ',';
  row += std::to_string(stats.replications);
  row += ',';
  row += fmt(stats.tail.mean);
  row += ',';
  row += fmt(stats.tail.lo());
  row += ',';
  row += fmt(stats.tail.hi());
  row += ',';
  row += fmt(stats.tail_stddev);
  row += ',';
  row += fmt(stats.tail_psquare);
  row += ',';
  row += fmt(stats.mean_latency);
  row += ',';
  row += fmt(stats.reissue_rate);
  row += ',';
  row += fmt(stats.remediation);
  row += ',';
  row += fmt(stats.utilization);
  row += ',';
  row += fmt(stats.outstanding_at_delay);
  row += ',';
  row += fmt(stats.delay.mean);
  row += ',';
  row += fmt(stats.delay.lo());
  row += ',';
  row += fmt(stats.delay.hi());
  row += ',';
  row += fmt(stats.probability.mean);
  row += ',';
  row += fmt(stats.probability.lo());
  row += ',';
  row += fmt(stats.probability.hi());
  return row;
}

void write_csv(std::ostream& os, const std::vector<CellStats>& cells) {
  os << csv_header() << "\n";
  for (const auto& cell : cells) os << csv_row(cell) << "\n";
}

// --------------------------------------------------------------- raw CSV

namespace {

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto pos = line.find(',', start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

double field_num(std::string_view column, std::string_view token) {
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("raw csv: column " + std::string(column) +
                             ": not a number: '" + std::string(token) + "'");
  }
  return value;
}

std::uint64_t field_u64(std::string_view column, std::string_view token) {
  std::uint64_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("raw csv: column " + std::string(column) +
                             ": not a count: '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string raw_csv_header() {
  return "scenario,policy,percentile,cell,replication,seed,resolved_policy,"
         "tail,tail_p2,mean_latency,reissue_rate,remediation,utilization,"
         "outstanding,delay,probability";
}

namespace {

/// The (d, q) a single-stage resolved policy chose (tuned/optimal specs
/// resolve per replication); multi-stage and no-reissue rows carry zeros.
std::pair<double, double> resolved_params(const core::ReissuePolicy& policy) {
  if (policy.stage_count() != 1) return {0.0, 0.0};
  return {policy.delay(), policy.probability()};
}

}  // namespace

std::string raw_csv_row(const CellResult& cell, std::size_t cell_index,
                        std::size_t replication) {
  const ReplicationMetrics& rep = cell.replications.at(replication);
  std::string row;
  row += cell.scenario;
  row += ',';
  row += cell.policy;
  row += ',';
  row += fmt(cell.percentile);
  row += ',';
  row += std::to_string(cell_index);
  row += ',';
  row += std::to_string(replication);
  row += ',';
  row += std::to_string(rep.seed);
  row += ',';
  row += to_string(PolicySpec::fixed_policy(rep.policy));
  row += ',';
  row += fmt(rep.tail);
  row += ',';
  row += fmt(rep.tail_psquare);
  row += ',';
  row += fmt(rep.mean_latency);
  row += ',';
  row += fmt(rep.reissue_rate);
  row += ',';
  row += fmt(rep.remediation);
  row += ',';
  row += fmt(rep.utilization);
  row += ',';
  row += fmt(rep.outstanding_at_delay);
  const auto [delay, probability] = resolved_params(rep.policy);
  row += ',';
  row += fmt(delay);
  row += ',';
  row += fmt(probability);
  return row;
}

void write_raw_csv(std::ostream& os, const std::vector<CellResult>& cells,
                   std::size_t first_cell_index) {
  os << raw_csv_header() << "\n";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < cells[c].replications.size(); ++r) {
      os << raw_csv_row(cells[c], first_cell_index + c, r) << "\n";
    }
  }
}

RawRow parse_raw_csv_row(std::string_view line) {
  const auto fields = split_fields(line);
  if (fields.size() != 16) {
    throw std::runtime_error("raw csv: expected 16 columns, got " +
                             std::to_string(fields.size()));
  }
  RawRow row;
  row.scenario = std::string(fields[0]);
  if (row.scenario.empty()) {
    throw std::runtime_error("raw csv: column scenario: empty");
  }
  row.policy = std::string(fields[1]);
  // Both policy tokens go through the spec parser: malformed tokens fail
  // here instead of producing unreadable cells at aggregation time.
  (void)parse_policy_spec(row.policy);
  row.percentile = field_num("percentile", fields[2]);
  row.cell = static_cast<std::size_t>(field_u64("cell", fields[3]));
  row.replication =
      static_cast<std::size_t>(field_u64("replication", fields[4]));
  row.metrics.seed = field_u64("seed", fields[5]);
  const PolicySpec resolved = parse_policy_spec(std::string(fields[6]));
  if (resolved.kind != PolicySpec::Kind::kFixed) {
    throw std::runtime_error(
        "raw csv: column resolved_policy: expected a fixed policy token, "
        "got '" + std::string(fields[6]) + "'");
  }
  row.metrics.policy = resolved.fixed;
  row.metrics.tail = field_num("tail", fields[7]);
  row.metrics.tail_psquare = field_num("tail_p2", fields[8]);
  row.metrics.mean_latency = field_num("mean_latency", fields[9]);
  row.metrics.reissue_rate = field_num("reissue_rate", fields[10]);
  row.metrics.remediation = field_num("remediation", fields[11]);
  row.metrics.utilization = field_num("utilization", fields[12]);
  row.metrics.outstanding_at_delay = field_num("outstanding", fields[13]);
  // The trailing (d, q) columns are derived from resolved_policy on write;
  // a row where they disagree was hand-edited or corrupted.
  const auto [delay, probability] = resolved_params(row.metrics.policy);
  if (field_num("delay", fields[14]) != delay ||
      field_num("probability", fields[15]) != probability) {
    throw std::runtime_error(
        "raw csv: columns delay/probability disagree with resolved_policy '" +
        std::string(fields[6]) + "'");
  }
  return row;
}

std::vector<RawRow> parse_raw_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != raw_csv_header()) {
    throw std::runtime_error("raw csv: missing or mismatched header line");
  }
  std::vector<RawRow> rows;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      rows.push_back(parse_raw_csv_row(line));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("line " + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return rows;
}

std::vector<CellResult> cells_from_raw_rows(const std::vector<RawRow>& rows,
                                            std::size_t replications) {
  if (replications == 0) {
    throw std::runtime_error("cells_from_raw_rows: replications must be >= 1");
  }
  if (rows.empty()) return {};

  std::size_t lo = rows.front().cell;
  std::size_t hi = rows.front().cell;
  for (const RawRow& row : rows) {
    lo = std::min(lo, row.cell);
    hi = std::max(hi, row.cell);
  }
  const std::size_t count = hi - lo + 1;
  if (rows.size() != count * replications) {
    throw std::runtime_error(
        "cells_from_raw_rows: cells " + std::to_string(lo) + ".." +
        std::to_string(hi) + " x " + std::to_string(replications) +
        " replications need " + std::to_string(count * replications) +
        " rows, got " + std::to_string(rows.size()));
  }

  std::vector<CellResult> cells(count);
  std::vector<std::vector<bool>> seen(count,
                                      std::vector<bool>(replications, false));
  for (const RawRow& row : rows) {
    const std::size_t c = row.cell - lo;
    const std::string where =
        "cell " + std::to_string(row.cell) + " replication " +
        std::to_string(row.replication);
    if (row.replication >= replications) {
      throw std::runtime_error("cells_from_raw_rows: " + where +
                               " out of range (replications " +
                               std::to_string(replications) + ")");
    }
    if (seen[c][row.replication]) {
      throw std::runtime_error("cells_from_raw_rows: duplicate " + where);
    }
    seen[c][row.replication] = true;
    CellResult& cell = cells[c];
    if (cell.replications.empty()) {
      cell.scenario = row.scenario;
      cell.policy = row.policy;
      cell.percentile = row.percentile;
      cell.replications.resize(replications);
    } else if (cell.scenario != row.scenario || cell.policy != row.policy ||
               cell.percentile != row.percentile) {
      throw std::runtime_error("cells_from_raw_rows: " + where +
                               " disagrees with earlier rows of its cell "
                               "(scenario/policy/percentile)");
    }
    cell.replications[row.replication] = row.metrics;
  }
  // The row-count check above leaves exactly one failure mode: a missing
  // (cell, replication) compensated by a duplicate elsewhere -- and
  // duplicates already threw -- or by a row in a never-seen cell inside
  // the range.
  for (std::size_t c = 0; c < count; ++c) {
    if (cells[c].replications.empty()) {
      throw std::runtime_error("cells_from_raw_rows: no rows for cell " +
                               std::to_string(lo + c));
    }
  }
  return cells;
}

}  // namespace reissue::exp
