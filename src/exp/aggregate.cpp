#include "reissue/exp/aggregate.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace reissue::exp {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

}  // namespace

CellStats aggregate_cell(const CellResult& cell) {
  if (cell.replications.empty()) {
    throw std::invalid_argument("aggregate_cell: no replications");
  }
  CellStats stats;
  stats.scenario = cell.scenario;
  stats.policy = cell.policy;
  stats.percentile = cell.percentile;
  stats.replications = cell.replications.size();

  stats::RunningStats tails;
  stats::RunningStats sketches;
  stats::RunningStats means;
  stats::RunningStats rates;
  stats::RunningStats remediations;
  stats::RunningStats utilizations;
  stats::RunningStats outstanding;
  stats::RunningStats delays;
  stats::RunningStats probabilities;
  for (const auto& rep : cell.replications) {
    tails.add(rep.tail);
    sketches.add(rep.tail_psquare);
    means.add(rep.mean_latency);
    rates.add(rep.reissue_rate);
    remediations.add(rep.remediation);
    utilizations.add(rep.utilization);
    outstanding.add(rep.outstanding_at_delay);
    if (rep.policy.stage_count() == 1) {
      delays.add(rep.policy.delay());
      probabilities.add(rep.policy.probability());
    }
  }
  stats.tail = stats::mean_ci95(tails);
  stats.tail_stddev = tails.stddev();
  stats.tail_psquare = sketches.mean();
  stats.mean_latency = means.mean();
  stats.reissue_rate = rates.mean();
  stats.remediation = remediations.mean();
  stats.utilization = utilizations.mean();
  stats.outstanding_at_delay = outstanding.mean();
  stats.mean_delay = delays.mean();
  stats.mean_probability = probabilities.mean();
  return stats;
}

std::vector<CellStats> aggregate(const std::vector<CellResult>& cells) {
  std::vector<CellStats> out;
  out.reserve(cells.size());
  for (const auto& cell : cells) out.push_back(aggregate_cell(cell));
  return out;
}

std::string csv_header() {
  return "scenario,policy,percentile,replications,tail_mean,tail_ci_lo,"
         "tail_ci_hi,tail_stddev,tail_p2,mean_latency,reissue_rate,"
         "remediation,utilization,outstanding,delay,probability";
}

std::string csv_row(const CellStats& stats) {
  std::string row;
  row += stats.scenario;
  row += ',';
  row += stats.policy;
  row += ',';
  row += fmt(stats.percentile);
  row += ',';
  row += std::to_string(stats.replications);
  row += ',';
  row += fmt(stats.tail.mean);
  row += ',';
  row += fmt(stats.tail.lo());
  row += ',';
  row += fmt(stats.tail.hi());
  row += ',';
  row += fmt(stats.tail_stddev);
  row += ',';
  row += fmt(stats.tail_psquare);
  row += ',';
  row += fmt(stats.mean_latency);
  row += ',';
  row += fmt(stats.reissue_rate);
  row += ',';
  row += fmt(stats.remediation);
  row += ',';
  row += fmt(stats.utilization);
  row += ',';
  row += fmt(stats.outstanding_at_delay);
  row += ',';
  row += fmt(stats.mean_delay);
  row += ',';
  row += fmt(stats.mean_probability);
  return row;
}

void write_csv(std::ostream& os, const std::vector<CellStats>& cells) {
  os << csv_header() << "\n";
  for (const auto& cell : cells) os << csv_row(cell) << "\n";
}

}  // namespace reissue::exp
