#include "reissue/exp/registry.hpp"

#include <stdexcept>

namespace reissue::exp {

namespace {

std::vector<std::string> split_list(std::string_view list) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto pos = list.find(',', start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(list.substr(start));
      break;
    }
    parts.emplace_back(list.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

/// The shared policy grid of the catalog's simulation scenarios: baseline,
/// a fixed probabilistic reissue point, and deterministic hedging.
std::vector<PolicySpec> default_grid() {
  return {PolicySpec::fixed_policy(core::ReissuePolicy::none()),
          PolicySpec::fixed_policy(core::ReissuePolicy::single_r(30.0, 0.5)),
          PolicySpec::fixed_policy(core::ReissuePolicy::single_d(60.0))};
}

ScenarioSpec base_queueing(std::string name, double utilization) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.kind = WorkloadKind::kQueueing;
  spec.utilization = utilization;
  spec.ratio = 0.5;
  spec.queries = 16000;
  spec.warmup = 1600;
  spec.percentile = 0.99;
  spec.policies = default_grid();
  return spec;
}

ScenarioRegistry make_built_in() {
  ScenarioRegistry registry;

  // §5.1 infinite-server workloads.
  {
    ScenarioSpec spec;
    spec.name = "independent";
    spec.kind = WorkloadKind::kIndependent;
    spec.queries = 20000;
    spec.warmup = 2000;
    spec.policies = default_grid();
    registry.add(spec);
    spec.name = "correlated";
    spec.kind = WorkloadKind::kCorrelated;
    spec.ratio = 0.5;
    registry.add(spec);
  }

  // §5.1/§5.4 queueing at increasing load.
  registry.add(base_queueing("queueing-u30", 0.30));
  registry.add(base_queueing("queueing-u50", 0.50));
  registry.add(base_queueing("queueing-u70", 0.70));

  // Overload: utilization near saturation, where extra copies can flip
  // from remedy to poison (Vulimiri et al., Shah et al.).
  {
    ScenarioSpec spec = base_queueing("overload-u90", 0.90);
    spec.queries = 12000;
    spec.warmup = 1200;
    registry.add(spec);
  }

  // Bursty phases: load alternates between half and triple the base rate
  // (the §4.4 "varying load" drift regime).
  {
    ScenarioSpec spec = base_queueing("bursty", 0.40);
    spec.phases = {BurstPhase{400.0, 0.5}, BurstPhase{100.0, 3.0}};
    registry.add(spec);
  }

  // Heterogeneous fleet: two half-speed servers and one quarter-speed
  // straggler among ten.
  {
    ScenarioSpec spec = base_queueing("heterogeneous", 0.30);
    spec.server_speeds = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 4.0};
    registry.add(spec);
  }

  // Background interference episodes (paper §1's "temporary shortages in
  // CPU cycles"): ~10% of each server consumed by 50-unit episodes.
  {
    ScenarioSpec spec = base_queueing("interference", 0.30);
    spec.interference_rate = 0.002;
    spec.interference_mean = 50.0;
    registry.add(spec);
  }

  // Optimizer in the loop (§4.1/§4.2 against the no-reissue baseline):
  // each replication trains the data-driven optimizer on its own latency
  // samples and measures what the chosen policy delivers — the paper's
  // headline "optimized reissue vs. baseline" comparison.  Sized so the
  // extra training run per replication stays sweep-affordable.
  {
    ScenarioSpec spec = base_queueing("queueing-optimal", 0.50);
    spec.queries = 8000;
    spec.warmup = 800;
    spec.policies = {parse_policy_spec("none"),
                     parse_policy_spec("optimal:0.05"),
                     parse_policy_spec("optimal:0.05:corr"),
                     parse_policy_spec("optimal-d:0.05")};
    registry.add(spec);
  }

  // Fault-injection regimes (ROADMAP robustness item).  The overload-flip
  // trio pins the paper's central caveat as a golden artifact: immediate:1
  // doubles the offered load, so the same reissue policy that rescues the
  // tail at util 0.35 (effective 0.7) saturates the fleet at util 0.62
  // (effective 1.24) and destroys it.  A light slowdown plan keeps the
  // tail fault-driven rather than purely queueing-driven.
  {
    ScenarioSpec spec = base_queueing("overload-flip-under", 0.35);
    spec.queries = 6000;
    spec.warmup = 600;
    // Independent redraws (ratio 0): correlated copies mute the underload
    // win and the flip never shows.
    spec.ratio = 0.0;
    spec.faults = parse_fault_spec("slowdown:0.0005,3,40");
    spec.policies = {parse_policy_spec("none"),
                     parse_policy_spec("immediate:1"),
                     parse_policy_spec("optimal:0.1")};
    registry.add(spec);
    spec.name = "overload-flip-mid";
    spec.utilization = 0.50;
    registry.add(spec);
    spec.name = "overload-flip";
    spec.utilization = 0.62;
    registry.add(spec);
  }

  // Crash + recovery: queued copies on a crashed server fail; primaries
  // retry, reissue copies are abandoned — so reissue is the survival
  // mechanism for queries whose primary lands on a doomed server.
  {
    ScenarioSpec spec = base_queueing("crash-recovery", 0.40);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.faults = parse_fault_spec("crash:3000,120");
    spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:30:0.5")};
    registry.add(spec);
  }

  // Correlated degradation: cluster-wide episodes slow 3 of 10 servers at
  // once, the regime where independent-failure reasoning breaks down.
  {
    ScenarioSpec spec = base_queueing("correlated-degrade", 0.40);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.faults = parse_fault_spec("corr:3,0.0008,60,3");
    spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:30:0.5"),
                     parse_policy_spec("d:60")};
    registry.add(spec);
  }

  // Fork-join fan-out regimes (sibling-group query model).  The flip pair
  // pins redundancy's load-dependent sign the same way the overload-flip
  // trio does for reissue: n=3 replicated copies rescue the tail when the
  // fleet is nearly idle (effective load 3 x 0.12) and poison it once the
  // tripled load saturates the fleet (3 x 0.85).  Exponential service
  // makes the overload half honest: with the default Pareto tail the
  // min over three independent draws cuts so much work that replication
  // wins at any load, whereas a memoryless tail wins only a 3x factor at
  // low load and leaves in-service losers burning full draws once queues
  // build.  Independent redraws (ratio 0) for the same reason as
  // overload-flip: correlated copies mute the underload win.
  {
    ScenarioSpec spec = base_queueing("fanout-flip-under", 0.12);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.ratio = 0.0;
    spec.service = "exp:1";
    spec.fanout = parse_fanout_spec("3:1:spread");
    spec.policies = {parse_policy_spec("none")};
    registry.add(spec);
    spec.name = "fanout-flip-over";
    spec.utilization = 0.85;
    registry.add(spec);
  }

  // Replicated fan-out with reissue stacked on top: every query runs as a
  // 3-wide sibling group on distinct servers, and the reissue policy adds
  // late-bound copies to the same group.
  {
    ScenarioSpec spec = base_queueing("fanout-replicated", 0.15);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.ratio = 0.0;
    spec.fanout = parse_fanout_spec("3:1:spread");
    spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:30:0.5"),
                     parse_policy_spec("immediate:1")};
    registry.add(spec);
  }

  // Erasure-coded read: 6 shards, any 4 reconstruct, each shard carrying
  // 1/4 of the primary's service demand — redundancy without the
  // replicated regime's load multiplication.
  {
    ScenarioSpec spec = base_queueing("fanout-ec", 0.30);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.ratio = 0.0;
    spec.fanout = parse_fanout_spec("6:4:ec");
    spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:30:0.5")};
    registry.add(spec);
  }

  // Partition-aggregate: the query fans to every server, each partition
  // does 1/n of the work, and the slowest partition sets the latency —
  // the classic all-of-n barrier where reissue targets the straggler.
  {
    ScenarioSpec spec = base_queueing("partition-aggregate", 0.40);
    spec.queries = 6000;
    spec.warmup = 600;
    spec.fanout = parse_fanout_spec("10:10:ec");
    spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:30:0.5"),
                     parse_policy_spec("d:60")};
    registry.add(spec);
  }

  // System substrates, sized for tractable sweeps.
  {
    ScenarioSpec spec;
    spec.name = "redis-small";
    spec.kind = WorkloadKind::kRedis;
    spec.utilization = 0.40;
    spec.queries = 6000;
    spec.warmup = 600;
    spec.policies = default_grid();
    registry.add(spec);
    spec.name = "lucene-small";
    spec.kind = WorkloadKind::kLucene;
    spec.queries = 4000;
    spec.warmup = 400;
    registry.add(spec);
  }

  registry.add_catalog("infinite-server", {"independent", "correlated"});
  registry.add_catalog("queueing-sweep",
                       {"queueing-u30", "queueing-u50", "queueing-u70"});
  registry.add_catalog(
      "regimes", {"overload-u90", "bursty", "heterogeneous", "interference"});
  registry.add_catalog("optimizer-loop", {"queueing-optimal"});
  registry.add_catalog("fault-matrix",
                       {"overload-flip-under", "overload-flip-mid",
                        "overload-flip", "crash-recovery",
                        "correlated-degrade"});
  registry.add_catalog("fanout-matrix",
                       {"fanout-flip-under", "fanout-flip-over",
                        "fanout-replicated", "fanout-ec",
                        "partition-aggregate"});
  registry.add_catalog("systems-small", {"redis-small", "lucene-small"});
  registry.add_catalog("sim-all",
                       {"independent", "correlated", "queueing-u30",
                        "queueing-u50", "queueing-u70", "overload-u90",
                        "bursty", "heterogeneous", "interference",
                        "queueing-optimal", "fanout-flip-under",
                        "fanout-flip-over", "fanout-replicated", "fanout-ec",
                        "partition-aggregate"});
  return registry;
}

}  // namespace

void ScenarioRegistry::add(ScenarioSpec spec) {
  // Round-trip through the parser: validates the spec and guarantees every
  // registered scenario is expressible as a spec string.
  ScenarioSpec parsed = parse_scenario(to_spec_string(spec));
  if (parsed != spec) {
    throw std::runtime_error("scenario '" + spec.name +
                             "' does not round-trip through its spec string");
  }
  if (find(spec.name) != nullptr) {
    throw std::runtime_error("duplicate scenario name '" + spec.name + "'");
  }
  scenarios_.push_back(std::move(spec));
}

void ScenarioRegistry::add_catalog(std::string name,
                                   std::vector<std::string> members) {
  if (find(name) != nullptr) {
    throw std::runtime_error("catalog name '" + name +
                             "' collides with a scenario");
  }
  for (const auto& catalog : catalogs_) {
    if (catalog.name == name) {
      throw std::runtime_error("duplicate catalog name '" + name + "'");
    }
  }
  for (const auto& member : members) {
    if (find(member) == nullptr) {
      throw std::runtime_error("catalog '" + name +
                               "' references unknown scenario '" + member +
                               "'");
    }
  }
  catalogs_.push_back(Catalog{std::move(name), std::move(members)});
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& spec : scenarios_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<ScenarioSpec> ScenarioRegistry::resolve(
    std::string_view list) const {
  std::vector<ScenarioSpec> specs;
  for (const auto& entry : split_list(list)) {
    if (entry.empty()) continue;
    if (entry.find('=') != std::string::npos) {
      specs.push_back(parse_scenario(entry));
      continue;
    }
    if (const ScenarioSpec* spec = find(entry)) {
      specs.push_back(*spec);
      continue;
    }
    const Catalog* catalog = nullptr;
    for (const auto& candidate : catalogs_) {
      if (candidate.name == entry) {
        catalog = &candidate;
        break;
      }
    }
    if (catalog == nullptr) {
      std::string message = "unknown scenario or catalog '" + entry +
                            "'.\navailable scenarios:";
      for (const auto& spec : scenarios_) message += " " + spec.name;
      message += "\navailable catalogs:";
      for (const auto& candidate : catalogs_) message += " " + candidate.name;
      throw std::runtime_error(message);
    }
    for (const auto& member : catalog->members) {
      specs.push_back(*find(member));
    }
  }
  if (specs.empty()) {
    throw std::runtime_error("no scenarios selected");
  }
  return specs;
}

const ScenarioRegistry& ScenarioRegistry::built_in() {
  static const ScenarioRegistry registry = make_built_in();
  return registry;
}

}  // namespace reissue::exp
