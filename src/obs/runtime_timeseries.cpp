#include "reissue/obs/runtime_timeseries.hpp"

#include <charconv>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "reissue/obs/runtime_metrics.hpp"
#include "reissue/stats/tail_summary.hpp"

namespace reissue::obs {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

}  // namespace

RuntimeTimeSeriesSampler::RuntimeTimeSeriesSampler(
    const runtime::Clock& clock, runtime::ReissueClient& client,
    RuntimeTimeSeriesOptions options)
    : clock_(clock), client_(client), options_(std::move(options)) {
  if (!(options_.window_ms > 0.0)) {
    throw std::invalid_argument(
        "RuntimeTimeSeriesSampler: window_ms must be > 0");
  }
  if (!(options_.percentile > 0.0) || !(options_.percentile < 1.0)) {
    throw std::invalid_argument(
        "RuntimeTimeSeriesSampler: percentile must be in (0, 1)");
  }
  window_start_ms_ = clock_.now_ms();
}

RuntimeTimeSeriesSampler::~RuntimeTimeSeriesSampler() { stop(); }

void RuntimeTimeSeriesSampler::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { sampler_loop(); });
}

void RuntimeTimeSeriesSampler::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  started_ = false;
  // Flush the final partial window so the tail of the run is not lost.
  tick(clock_.now_ms());
}

void RuntimeTimeSeriesSampler::row(const char* series, double value) {
  rows_.push_back(Row{window_, window_start_ms_, t_end_scratch_, series,
                      value});
}

void RuntimeTimeSeriesSampler::tick(double now_ms) {
  // Snapshot outside mutex_: stats() and drain_samples() take the
  // client's own locks and must not nest inside ours.
  const runtime::ReissueClientStats stats = client_.stats();
  std::vector<runtime::LatencySample> drained = client_.drain_samples();
  runtime::ThreadPoolStats pool_stats;
  const bool have_pool = options_.pool != nullptr;
  if (have_pool) pool_stats = options_.pool->stats();

  {
    std::lock_guard lock(mutex_);
    t_end_scratch_ = now_ms;
    row("submitted",
        static_cast<double>(stats.queries_submitted -
                            prev_.queries_submitted));
    row("completions",
        static_cast<double>(stats.first_responses - prev_.first_responses));
    row("reissues_issued",
        static_cast<double>(stats.reissues_issued - prev_.reissues_issued));
    row("reissues_suppressed",
        static_cast<double>((stats.reissues_suppressed_completed +
                             stats.reissues_suppressed_coin) -
                            (prev_.reissues_suppressed_completed +
                             prev_.reissues_suppressed_coin)));
    row("ring_dropped",
        static_cast<double>(stats.latency_ring_dropped -
                            prev_.latency_ring_dropped));
    row("inflight", static_cast<double>(stats.table_occupancy));
    row("pending_reissues", static_cast<double>(stats.pending_reissues));
    if (!drained.empty()) {
      // Window-local digest over the samples completed this window (rows
      // omitted for empty windows, matching the sim observer's schema).
      stats::TailSummary window_tail(options_.percentile);
      for (const runtime::LatencySample& s : drained) {
        window_tail.add(s.latency_ms);
      }
      row("latency_mean", window_tail.mean());
      row("latency_p", window_tail.quantile());
      row("latency_psquare", window_tail.psquare());
    }
    if (have_pool) {
      row("pool_queued", static_cast<double>(pool_stats.queued));
      row("pool_active", static_cast<double>(pool_stats.active));
    }
    samples_.insert(samples_.end(), drained.begin(), drained.end());
    prev_ = stats;
    window_start_ms_ = now_ms;
    ++window_;
  }

  if (!options_.metrics_out.empty()) {
    try {
      write_text_atomic(
          options_.metrics_out,
          format_prometheus(stats, have_pool ? &pool_stats : nullptr));
    } catch (const std::runtime_error&) {
      // An unwritable scrape file must not kill the sampler thread (the
      // run's primary outputs are the CSV and the latency log); stop
      // retrying a path that already failed once.
      options_.metrics_out.clear();
    }
  }
}

void RuntimeTimeSeriesSampler::write_csv(std::ostream& out) const {
  out << kCsvHeader << '\n';
  std::lock_guard lock(mutex_);
  for (const Row& r : rows_) {
    // run is always 0 (one live run per sampler); server is always -1
    // (the client sees the backend as a single endpoint).
    out << "0," << r.window << ',' << fmt(r.t_start) << ',' << fmt(r.t_end)
        << ',' << r.series << ",-1," << fmt(r.value) << '\n';
  }
}

std::vector<runtime::LatencySample> RuntimeTimeSeriesSampler::take_samples() {
  std::lock_guard lock(mutex_);
  return std::exchange(samples_, {});
}

std::uint64_t RuntimeTimeSeriesSampler::windows() const {
  std::lock_guard lock(mutex_);
  return window_;
}

void RuntimeTimeSeriesSampler::sampler_loop() {
  std::unique_lock lock(stop_mutex_);
  while (!stopping_) {
    // Fixed-duration wait per window.  A late wake widens the closed
    // window rather than backlogging ticks; tick() records actual
    // boundaries, so rates stay honest under scheduler jitter.
    stop_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                options_.window_ms),
                      [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    tick(clock_.now_ms());
    lock.lock();
  }
}

}  // namespace reissue::obs
