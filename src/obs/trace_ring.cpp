#include "reissue/obs/trace_ring.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "reissue/stats/tail_summary.hpp"

namespace reissue::obs {

namespace {

constexpr char kMagic[8] = {'R', 'I', 'S', 'S', 'T', 'R', 'C', '1'};

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

constexpr std::array<const char*, 17> kKindNames = {
    "run-begin",          "arrival",
    "reissue-scheduled",  "reissue-issued",
    "reissue-suppressed-completion", "reissue-suppressed-coin",
    "dispatch",           "service-start",
    "copy-cancelled",     "copy-complete",
    "query-done",         "interference",
    "server-state",       "run-end",
    "fault-begin",        "fault-end",
    "dispatch-failed",
};

TraceRecord make(TraceEventKind kind, double ts, double value,
                 std::uint64_t query, std::uint32_t server,
                 std::uint16_t stage, std::uint8_t copy) {
  TraceRecord r;
  r.ts = ts;
  r.value = value;
  r.query = query;
  r.server = server;
  r.stage = stage;
  r.event = static_cast<std::uint8_t>(kind);
  r.copy = copy;
  return r;
}

std::uint8_t clamp_copy(std::uint32_t copy_index) {
  return static_cast<std::uint8_t>(std::min<std::uint32_t>(copy_index, 0xff));
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRing: capacity must be > 0");
  }
  records_.resize(capacity);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest record: at 0 before the ring wraps, at next_ after.
  const std::size_t start = total_ <= records_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(records_[(start + i) % records_.size()]);
  }
  return out;
}

void RingTraceObserver::on_run_begin(const RunInfo& run) {
  ring_.push(make(TraceEventKind::kRunBegin, 0.0, run.arrival_rate, run.seed,
                  static_cast<std::uint32_t>(run.servers),
                  static_cast<std::uint16_t>(run.stages), 0));
}

void RingTraceObserver::on_arrival(double now, std::uint64_t query) {
  ring_.push(make(TraceEventKind::kArrival, now, 0.0, query, 0, 0, 0));
}

void RingTraceObserver::on_reissue_scheduled(double now, std::uint64_t query,
                                             std::uint16_t stage,
                                             double fire_time) {
  ring_.push(make(TraceEventKind::kReissueScheduled, now, fire_time, query, 0,
                  stage, 0));
}

void RingTraceObserver::on_reissue_issued(double now, std::uint64_t query,
                                          std::uint16_t stage) {
  ring_.push(make(TraceEventKind::kReissueIssued, now, 0.0, query, 0, stage,
                  0));
}

void RingTraceObserver::on_reissue_suppressed(double now, std::uint64_t query,
                                              std::uint16_t stage,
                                              bool by_completion) {
  ring_.push(make(by_completion
                      ? TraceEventKind::kReissueSuppressedCompletion
                      : TraceEventKind::kReissueSuppressedCoin,
                  now, 0.0, query, 0, stage, 0));
}

void RingTraceObserver::on_dispatch(double now, std::uint64_t query,
                                    sim::CopyKind /*kind*/,
                                    std::uint32_t copy_index,
                                    std::uint32_t server,
                                    double service_time) {
  ring_.push(make(TraceEventKind::kDispatch, now, service_time, query, server,
                  0, clamp_copy(copy_index)));
}

void RingTraceObserver::on_service_start(double now, std::uint32_t server,
                                         const sim::Request& request,
                                         double cost) {
  ring_.push(make(TraceEventKind::kServiceStart, now, cost, request.query_id,
                  server, 0, clamp_copy(request.copy_index)));
}

void RingTraceObserver::on_copy_cancelled(double now, std::uint32_t server,
                                          std::uint64_t query,
                                          std::uint32_t copy_index) {
  ring_.push(make(TraceEventKind::kCopyCancelled, now, 0.0, query, server, 0,
                  clamp_copy(copy_index)));
}

void RingTraceObserver::on_copy_complete(double now, std::uint64_t query,
                                         sim::CopyKind /*kind*/,
                                         std::uint32_t copy_index,
                                         double response) {
  ring_.push(make(TraceEventKind::kCopyComplete, now, response, query, 0, 0,
                  clamp_copy(copy_index)));
}

void RingTraceObserver::on_query_done(double now, std::uint64_t query,
                                      double latency) {
  ring_.push(make(TraceEventKind::kQueryDone, now, latency, query, 0, 0, 0));
}

void RingTraceObserver::on_server_state(double now, std::uint32_t server,
                                        std::size_t queued, bool busy) {
  ring_.push(make(TraceEventKind::kServerState, now,
                  static_cast<double>(queued), 0, server, 0,
                  busy ? 1 : 0));
}

void RingTraceObserver::on_interference(double now, std::uint32_t server,
                                        double duration) {
  ring_.push(make(TraceEventKind::kInterference, now, duration, 0, server, 0,
                  0));
}

void RingTraceObserver::on_fault_begin(double now, std::uint32_t server,
                                       sim::FaultKind fault, double duration) {
  ring_.push(make(TraceEventKind::kFaultBegin, now, duration, 0, server,
                  static_cast<std::uint16_t>(fault), 0));
}

void RingTraceObserver::on_fault_end(double now, std::uint32_t server,
                                     sim::FaultKind fault) {
  ring_.push(make(TraceEventKind::kFaultEnd, now, 0.0, 0, server,
                  static_cast<std::uint16_t>(fault), 0));
}

void RingTraceObserver::on_dispatch_failed(double now, std::uint64_t query,
                                           sim::CopyKind /*kind*/,
                                           std::uint32_t copy_index,
                                           std::uint32_t server) {
  ring_.push(make(TraceEventKind::kDispatchFailed, now, 0.0, query, server, 0,
                  clamp_copy(copy_index)));
}

void RingTraceObserver::on_run_end(double horizon, double utilization,
                                   const sim::RunCounters& /*counters*/) {
  ring_.push(make(TraceEventKind::kRunEnd, horizon, utilization, 0, 0, 0, 0));
}

void write_trace_ring(const std::string& path, const TraceRing& ring) {
  write_trace_ring(path, ring.snapshot(), ring.total_pushed());
}

void write_trace_ring(const std::string& path,
                      const std::vector<TraceRecord>& records,
                      std::uint64_t total_pushed) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_trace_ring: cannot open " + path);
  }
  const std::uint64_t total = total_pushed;
  const std::uint64_t count = records.size();
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&total), sizeof total);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  if (!records.empty()) {
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() *
                                           sizeof(TraceRecord)));
  }
  if (!out) {
    throw std::runtime_error("write_trace_ring: write failed for " + path);
  }
}

TraceRingFile read_trace_ring(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_trace_ring: cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_trace_ring: bad magic in " + path);
  }
  TraceRingFile file;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&file.total_pushed),
          sizeof file.total_pushed);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in) {
    throw std::runtime_error("read_trace_ring: truncated header in " + path);
  }
  // Sanity bound so a corrupt count cannot drive a giant allocation.
  constexpr std::uint64_t kMaxRecords = (1ull << 32) / sizeof(TraceRecord);
  if (count > kMaxRecords) {
    throw std::runtime_error("read_trace_ring: implausible record count in " +
                             path);
  }
  file.records.resize(static_cast<std::size_t>(count));
  if (count > 0) {
    in.read(reinterpret_cast<char*>(file.records.data()),
            static_cast<std::streamsize>(count * sizeof(TraceRecord)));
  }
  if (!in) {
    throw std::runtime_error("read_trace_ring: truncated records in " + path);
  }
  return file;
}

std::string summarize_trace(const TraceRingFile& file) {
  std::array<std::uint64_t, kKindNames.size()> counts{};
  double t_min = 0.0, t_max = 0.0;
  bool any_ts = false;
  stats::TailSummary latencies(0.99);
  std::map<std::uint32_t, double> busy;  // server -> occupied time
  // Fault digest state: episodes pair a kFaultBegin with the next
  // kFaultEnd on the same (server, kind).  A matched pair contributes its
  // observed duration (end.ts - begin.ts); a begin whose end fell outside
  // the retained window falls back to the scheduled duration the begin
  // record carries in `value`.  An unmatched end (its begin was
  // overwritten) still counts as an episode with unknown duration.
  constexpr std::size_t kFaultKinds = 3;
  constexpr std::array<const char*, kFaultKinds> kFaultNames = {
      "slowdown", "degrade", "crash"};
  std::array<std::uint64_t, kFaultKinds> fault_episodes{};
  std::array<double, kFaultKinds> fault_time{};
  std::map<std::pair<std::uint32_t, std::uint16_t>, TraceRecord> open_faults;
  for (const TraceRecord& r : file.records) {
    if (r.event < counts.size()) ++counts[r.event];
    const auto kind = static_cast<TraceEventKind>(r.event);
    if (kind != TraceEventKind::kRunBegin) {
      if (!any_ts || r.ts < t_min) t_min = r.ts;
      if (!any_ts || r.ts > t_max) t_max = r.ts;
      any_ts = true;
    }
    if (kind == TraceEventKind::kQueryDone) latencies.add(r.value);
    if (kind == TraceEventKind::kServiceStart &&
        r.server != sim::SimObserver::kNoServer) {
      busy[r.server] += r.value;
    }
    if (kind == TraceEventKind::kFaultBegin && r.stage < kFaultKinds) {
      ++fault_episodes[r.stage];
      open_faults[{r.server, r.stage}] = r;
    }
    if (kind == TraceEventKind::kFaultEnd && r.stage < kFaultKinds) {
      const auto it = open_faults.find({r.server, r.stage});
      if (it != open_faults.end()) {
        fault_time[r.stage] += r.ts - it->second.ts;
        open_faults.erase(it);
      } else {
        ++fault_episodes[r.stage];  // begin dropped from the ring
      }
    }
  }
  // Begins that never saw their end: scheduled duration fallback.
  for (const auto& [key, begin] : open_faults) {
    fault_time[key.second] += begin.value;
  }

  std::string out;
  out += "events retained " + std::to_string(file.records.size()) +
         " of " + std::to_string(file.total_pushed);
  const std::uint64_t dropped =
      file.total_pushed > file.records.size()
          ? file.total_pushed - file.records.size()
          : 0;
  out += " (dropped " + std::to_string(dropped) + " oldest)\n";
  if (any_ts) {
    out += "time range [" + fmt(t_min) + ", " + fmt(t_max) + "]\n";
  }
  for (std::size_t k = 0; k < kKindNames.size(); ++k) {
    if (counts[k] == 0) continue;
    out += std::string(kKindNames[k]) + " " + std::to_string(counts[k]) + "\n";
  }
  if (latencies.count() > 0) {
    out += "query latency mean " + fmt(latencies.mean()) + " p50 " +
           fmt(latencies.quantile(0.5)) + " p99 " +
           fmt(latencies.quantile(0.99)) + " max " + fmt(latencies.max()) +
           " (n=" + std::to_string(latencies.count()) + ")\n";
  }
  {
    std::uint64_t total_episodes = 0;
    for (const std::uint64_t n : fault_episodes) total_episodes += n;
    if (total_episodes > 0) {
      out += "fault episodes:";
      for (std::size_t k = 0; k < kFaultKinds; ++k) {
        if (fault_episodes[k] == 0) continue;
        out += " " + std::string(kFaultNames[k]) + "=" +
               std::to_string(fault_episodes[k]);
      }
      out += "\n";
      // "Degraded" covers slowdown + degrade episodes (the server still
      // answers, slowly); "down" is crash time (dispatches rejected).
      out += "fault time: degraded " + fmt(fault_time[0] + fault_time[1]) +
             " down " + fmt(fault_time[2]) + "\n";
    }
  }
  if (!busy.empty()) {
    // Top 5 busiest servers by retained service-start occupancy.
    std::vector<std::pair<std::uint32_t, double>> servers(busy.begin(),
                                                          busy.end());
    std::sort(servers.begin(), servers.end(), [](const auto& a,
                                                 const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    out += "busiest servers:";
    const std::size_t top = std::min<std::size_t>(servers.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
      out += " s" + std::to_string(servers[i].first) + "=" +
             fmt(servers[i].second);
    }
    out += "\n";
  }
  return out;
}

}  // namespace reissue::obs
