#include "reissue/obs/runtime_metrics.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace reissue::obs {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

void metric(std::string& out, const char* name, const char* help,
            const char* type, const std::string& value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
  out += value;
  out += '\n';
}

void counter(std::string& out, const char* name, const char* help,
             std::uint64_t value) {
  metric(out, name, help, "counter", std::to_string(value));
}

void gauge_u(std::string& out, const char* name, const char* help,
             std::uint64_t value) {
  metric(out, name, help, "gauge", std::to_string(value));
}

void gauge_d(std::string& out, const char* name, const char* help,
             double value) {
  metric(out, name, help, "gauge", fmt(value));
}

}  // namespace

std::string format_prometheus(const runtime::ReissueClientStats& client,
                              const runtime::ThreadPoolStats* pool) {
  std::string out;
  out.reserve(2048);
  counter(out, "reissue_queries_submitted_total",
          "Queries submitted to the reissue client.",
          client.queries_submitted);
  counter(out, "reissue_first_responses_total",
          "Queries whose first response has arrived.",
          client.first_responses);
  counter(out, "reissue_copies_issued_total",
          "Reissue copies actually dispatched.", client.reissues_issued);
  // One family with a reason label, so rate() over either series works and
  // the total suppression rate is a label-sum.
  {
    const char* name = "reissue_copies_suppressed_total";
    out += "# HELP ";
    out += name;
    out += " Reissue copies skipped before dispatch, by reason.\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += "{reason=\"completed\"} " +
           std::to_string(client.reissues_suppressed_completed) + "\n";
    out += name;
    out += "{reason=\"coin\"} " +
           std::to_string(client.reissues_suppressed_coin) + "\n";
  }
  gauge_u(out, "reissue_pending_reissues",
          "Entries waiting in the reissue heap.", client.pending_reissues);
  gauge_u(out, "reissue_table_capacity",
          "Completion-table slot count.", client.table_capacity);
  gauge_u(out, "reissue_table_occupancy",
          "Queries currently outstanding (clamped to table capacity).",
          client.table_occupancy);
  counter(out, "reissue_latency_samples_total",
          "First-response latency samples folded into the digest.",
          client.latency_samples);
  gauge_d(out, "reissue_latency_p50_ms",
          "Streaming P-square estimate of median first-response latency.",
          client.latency_p50_ms);
  gauge_d(out, "reissue_latency_p99_ms",
          "Streaming P-square estimate of p99 first-response latency.",
          client.latency_p99_ms);
  gauge_d(out, "reissue_latency_p999_ms",
          "Streaming P-square estimate of p999 first-response latency.",
          client.latency_p999_ms);
  gauge_u(out, "reissue_sample_ring_capacity",
          "Latency sample-ring capacity (0 when capture is disabled).",
          client.latency_ring_capacity);
  gauge_u(out, "reissue_sample_ring_occupancy",
          "Samples currently retained in the latency sample ring.",
          client.latency_ring_occupancy);
  counter(out, "reissue_sample_ring_recorded_total",
          "Samples ever recorded into the latency sample ring.",
          client.latency_ring_recorded);
  counter(out, "reissue_sample_ring_dropped_total",
          "Retained samples overwritten before being drained.",
          client.latency_ring_dropped);
  if (pool != nullptr) {
    gauge_u(out, "reissue_pool_threads", "Executor worker threads.",
            pool->threads);
    gauge_u(out, "reissue_pool_queued",
            "Tasks waiting for an executor worker.", pool->queued);
    gauge_u(out, "reissue_pool_active",
            "Tasks currently executing on the pool.", pool->active);
    counter(out, "reissue_pool_tasks_submitted_total",
            "Tasks ever submitted to the executor.", pool->submitted);
    counter(out, "reissue_pool_tasks_completed_total",
            "Tasks the executor has finished.", pool->completed);
  }
  return out;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_text_atomic: cannot open " + tmp);
    }
    out << text;
    out.flush();
    if (!out) {
      throw std::runtime_error("write_text_atomic: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_text_atomic: rename failed for " + path);
  }
}

}  // namespace reissue::obs
