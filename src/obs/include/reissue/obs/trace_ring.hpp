// Compact binary trace ring for high-volume runs.
//
// The JSON TraceObserver (obs/trace.hpp) costs ~100 bytes of text per
// event; at millions of events per run that dominates the run itself.
// The ring keeps the *last* `capacity` events as fixed 32-byte PODs with
// overwrite-oldest semantics — the crash-dump / flight-recorder model —
// and serializes to a small self-describing binary file that
// `reissue_cli trace-summarize` reads back.
//
// File layout (native endianness, fields little-endian on every platform
// this repo targets):
//   8 bytes  magic "RISSTRC1"
//   u64      total events pushed (>= record count when the ring wrapped)
//   u64      record count
//   records  TraceRecord[record_count], oldest first
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "reissue/sim/sim_observer.hpp"

namespace reissue::obs {

enum class TraceEventKind : std::uint8_t {
  kRunBegin = 0,
  kArrival = 1,
  kReissueScheduled = 2,
  kReissueIssued = 3,
  kReissueSuppressedCompletion = 4,
  kReissueSuppressedCoin = 5,
  kDispatch = 6,
  kServiceStart = 7,
  kCopyCancelled = 8,
  kCopyComplete = 9,
  kQueryDone = 10,
  kInterference = 11,
  kServerState = 12,
  kRunEnd = 13,
  kFaultBegin = 14,
  kFaultEnd = 15,
  kDispatchFailed = 16,
};

/// One traced event.  `value` is the kind-specific payload: service time
/// for dispatch/service-start, response for copy-complete, latency for
/// query-done, duration for interference, queue depth for server-state,
/// utilization for run-end, fire time for reissue-scheduled.
struct TraceRecord {
  double ts = 0.0;
  double value = 0.0;
  std::uint64_t query = 0;
  std::uint32_t server = 0;
  std::uint16_t stage = 0;
  std::uint8_t event = 0;
  std::uint8_t copy = 0;
};
static_assert(sizeof(TraceRecord) == 32, "records are written raw");

/// Fixed-capacity overwrite-oldest event buffer.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceRecord& record) noexcept {
    records_[next_] = record;
    if (++next_ == records_.size()) next_ = 0;
    ++total_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return records_.size();
  }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return total_ < records_.size() ? static_cast<std::size_t>(total_)
                                    : records_.size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

 private:
  std::vector<TraceRecord> records_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// SimObserver writing every hook into a TraceRing.  Not thread-safe:
/// attach to a single-threaded sweep.
class RingTraceObserver final : public sim::SimObserver {
 public:
  explicit RingTraceObserver(std::size_t capacity) : ring_(capacity) {}

  [[nodiscard]] const TraceRing& ring() const noexcept { return ring_; }

  void on_run_begin(const RunInfo& run) override;
  void on_arrival(double now, std::uint64_t query) override;
  void on_reissue_scheduled(double now, std::uint64_t query,
                            std::uint16_t stage, double fire_time) override;
  void on_reissue_issued(double now, std::uint64_t query,
                         std::uint16_t stage) override;
  void on_reissue_suppressed(double now, std::uint64_t query,
                             std::uint16_t stage, bool by_completion) override;
  void on_dispatch(double now, std::uint64_t query, sim::CopyKind kind,
                   std::uint32_t copy_index, std::uint32_t server,
                   double service_time) override;
  void on_service_start(double now, std::uint32_t server,
                        const sim::Request& request, double cost) override;
  void on_copy_cancelled(double now, std::uint32_t server, std::uint64_t query,
                         std::uint32_t copy_index) override;
  void on_copy_complete(double now, std::uint64_t query, sim::CopyKind kind,
                        std::uint32_t copy_index, double response) override;
  void on_query_done(double now, std::uint64_t query, double latency) override;
  void on_server_state(double now, std::uint32_t server, std::size_t queued,
                       bool busy) override;
  void on_interference(double now, std::uint32_t server,
                       double duration) override;
  void on_fault_begin(double now, std::uint32_t server, sim::FaultKind fault,
                      double duration) override;
  void on_fault_end(double now, std::uint32_t server,
                    sim::FaultKind fault) override;
  void on_dispatch_failed(double now, std::uint64_t query, sim::CopyKind kind,
                          std::uint32_t copy_index,
                          std::uint32_t server) override;
  void on_run_end(double horizon, double utilization,
                  const sim::RunCounters& counters) override;

 private:
  TraceRing ring_;
};

/// Serializes the ring (see the header comment for the layout); throws
/// std::runtime_error on I/O failure.
void write_trace_ring(const std::string& path, const TraceRing& ring);

/// Same file format from an already-snapshotted record sequence (oldest
/// first).  `total_pushed` must be >= records.size(); the difference is
/// reported as dropped-oldest by the summarizer.
void write_trace_ring(const std::string& path,
                      const std::vector<TraceRecord>& records,
                      std::uint64_t total_pushed);

struct TraceRingFile {
  std::uint64_t total_pushed = 0;
  std::vector<TraceRecord> records;  // oldest first
};

/// Reads a file written by write_trace_ring; throws std::runtime_error on
/// missing file, bad magic, or truncation.
[[nodiscard]] TraceRingFile read_trace_ring(const std::string& path);

/// Human-readable digest of a ring file: per-kind counts, time range,
/// completed-query latency stats, busiest servers.  What trace-summarize
/// prints.
[[nodiscard]] std::string summarize_trace(const TraceRingFile& file);

}  // namespace reissue::obs
