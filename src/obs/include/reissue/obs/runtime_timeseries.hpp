// Wall-clock windowed time-series of a live ReissueClient, the runtime
// analogue of TimeSeriesObserver.
//
// Emits the same tidy CSV schema —
//
//   run,window,t_start,t_end,series,server,value
//
// — so the sim's plotting/analysis scripts apply to live runs unchanged
// (server is always -1: the client sees the service as one endpoint).
// Per window it snapshots ReissueClientStats (and optionally
// ThreadPool::stats()) and emits counter deltas plus gauges:
//
//   submitted, completions, reissues_issued, reissues_suppressed,
//   ring_dropped               counter deltas inside the window
//   inflight, pending_reissues gauges at the window boundary
//   latency_mean, latency_p, latency_psquare
//                              over samples drained from the client's
//                              sample ring this window (rows omitted for
//                              windows with no completions, like the sim)
//   pool_queued, pool_active   executor gauges (when a pool is attached)
//
// Windowing semantics differ from the sim deliberately: the sim closes
// windows at exact k*W simulated boundaries, but a wall-clock sampler
// thread wakes up when the scheduler lets it.  Each tick closes the
// window [last_tick, now) with the *actual* times, so reported rates are
// honest under scheduling jitter rather than attributing a late wake's
// events to a nominal-width window.
//
// The sampler drains the client's latency sample ring every tick and
// retains the drained samples; take_samples() hands the full run's
// chronological batch to the caller (e.g. for core::write_latency_log),
// so enabling the time-series does not steal the latency log.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "reissue/runtime/executor.hpp"
#include "reissue/runtime/reissue_client.hpp"

namespace reissue::obs {

struct RuntimeTimeSeriesOptions {
  /// Window width in wall-clock milliseconds; must be > 0.
  double window_ms = 1000.0;
  /// Tracked windowed tail (the latency_p / latency_psquare series).
  double percentile = 0.99;
  /// When non-empty, every tick atomically rewrites this file with the
  /// Prometheus exposition of the latest stats snapshot.
  std::string metrics_out;
  /// Optional executor to include pool gauges for; must outlive sampling.
  runtime::ThreadPool* pool = nullptr;
};

class RuntimeTimeSeriesSampler {
 public:
  static constexpr const char* kCsvHeader =
      "run,window,t_start,t_end,series,server,value";

  /// `clock` and `client` must outlive the sampler.  Construction does not
  /// start sampling: call start() for the background thread, or drive
  /// tick() manually (deterministic tests use a ManualClock + tick()).
  RuntimeTimeSeriesSampler(const runtime::Clock& clock,
                           runtime::ReissueClient& client,
                           RuntimeTimeSeriesOptions options);
  ~RuntimeTimeSeriesSampler();

  RuntimeTimeSeriesSampler(const RuntimeTimeSeriesSampler&) = delete;
  RuntimeTimeSeriesSampler& operator=(const RuntimeTimeSeriesSampler&) =
      delete;

  /// Spawns the sampler thread (one tick per window).  No-op if running.
  void start();

  /// Stops the thread and flushes the final partial window.  Idempotent;
  /// also called by the destructor.
  void stop();

  /// Closes the window [previous tick, now_ms) and emits its rows.  Called
  /// by the sampler thread; public so tests can drive windows manually.
  /// Not thread-safe against itself — external calls require start() to
  /// not have been called (or stop() to have returned).
  void tick(double now_ms);

  /// Header plus every row emitted so far.
  void write_csv(std::ostream& out) const;

  /// Moves out the chronological batch of samples drained from the
  /// client's ring across all ticks so far.
  [[nodiscard]] std::vector<runtime::LatencySample> take_samples();

  /// Windows closed so far.
  [[nodiscard]] std::uint64_t windows() const;

 private:
  struct Row {
    std::uint64_t window;
    double t_start;
    double t_end;
    const char* series;
    double value;
  };

  void row(const char* series, double value);
  void sampler_loop();

  const runtime::Clock& clock_;
  runtime::ReissueClient& client_;
  RuntimeTimeSeriesOptions options_;

  /// Guards rows_/samples_/window state against write_csv()/take_samples()
  /// racing the sampler thread's tick().
  mutable std::mutex mutex_;
  std::vector<Row> rows_;
  std::vector<runtime::LatencySample> samples_;
  std::uint64_t window_ = 0;
  double window_start_ms_ = 0.0;
  runtime::ReissueClientStats prev_;
  /// Scratch for the row being assembled by tick() (under mutex_).
  double t_end_scratch_ = 0.0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace reissue::obs
