// Windowed time-series of simulator state, sampled on simulated-time
// boundaries.
//
// The sweep CSVs report one scalar per (scenario, policy) cell; this
// observer exposes the *dynamics* inside a run — per-server queue depth
// and busy fraction, in-flight reissue copies, windowed latency tails
// (both the P² sketch and the log-bucket histogram of
// stats::TailSummary) — as a tidy CSV with one row per (window, series):
//
//   run,window,t_start,t_end,series,server,value
//
// Sampling semantics: windows are [k*W, (k+1)*W) in simulated time.
// Depth-like series (queue_depth, inflight_reissues) are point samples at
// the window boundary; busy_fraction integrates server busy time over the
// window; count/latency series aggregate the events inside the window.
// The final window of a run is truncated at the run horizon and its busy
// fraction uses the truncated width.
//
// Unlike RunResult, the observer sees warmup queries too: `completions`
// summed over a run's windows equals ClusterConfig::queries.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "reissue/sim/sim_observer.hpp"
#include "reissue/stats/tail_summary.hpp"

namespace reissue::obs {

struct TimeSeriesOptions {
  /// Window width in simulated time units; must be > 0.
  double window = 0.0;
  /// Tracked windowed tail (the latency_p series).
  double percentile = 0.99;
};

/// Not thread-safe: attach to a single-threaded sweep.
class TimeSeriesObserver final : public sim::SimObserver {
 public:
  explicit TimeSeriesObserver(TimeSeriesOptions options);

  static constexpr const char* kCsvHeader =
      "run,window,t_start,t_end,series,server,value";

  /// All rows emitted so far (runs flush their tail window at on_run_end).
  void write_csv(std::ostream& out) const;

  /// End-of-run-equivalent tail summary over every query latency seen
  /// (all runs, warmup included).  Its histogram quantile is a pure
  /// function of the latency multiset, so it must agree exactly with a
  /// TailSummary fed the same latencies in any order — the windowed-vs-
  /// end-of-run consistency contract tests pin this.
  [[nodiscard]] const stats::TailSummary& overall() const noexcept {
    return overall_;
  }

  void on_run_begin(const RunInfo& run) override;
  void on_arrival(double now, std::uint64_t query) override;
  void on_reissue_issued(double now, std::uint64_t query,
                         std::uint16_t stage) override;
  void on_reissue_suppressed(double now, std::uint64_t query,
                             std::uint16_t stage, bool by_completion) override;
  void on_dispatch(double now, std::uint64_t query, sim::CopyKind kind,
                   std::uint32_t copy_index, std::uint32_t server,
                   double service_time) override;
  void on_copy_complete(double now, std::uint64_t query, sim::CopyKind kind,
                        std::uint32_t copy_index, double response) override;
  void on_query_done(double now, std::uint64_t query, double latency) override;
  void on_group_complete(double now, std::uint64_t query,
                         std::uint32_t responded, sim::CopyKind winner_kind,
                         std::uint32_t winner_copy) override;
  void on_server_state(double now, std::uint32_t server, std::size_t queued,
                       bool busy) override;
  void on_fault_begin(double now, std::uint32_t server, sim::FaultKind fault,
                      double duration) override;
  void on_fault_end(double now, std::uint32_t server,
                    sim::FaultKind fault) override;
  void on_dispatch_failed(double now, std::uint64_t query, sim::CopyKind kind,
                          std::uint32_t copy_index,
                          std::uint32_t server) override;
  void on_run_end(double horizon, double utilization,
                  const sim::RunCounters& counters) override;

 private:
  struct Row {
    std::uint32_t run;
    std::uint64_t window;
    double t_start;
    double t_end;
    const char* series;
    std::int64_t server;  // -1 for run-global series
    double value;
  };

  struct ServerState {
    std::size_t depth = 0;
    bool busy = false;
    double last_change = 0.0;
    double busy_accum = 0.0;
  };

  /// Flushes every window that ends at or before `now`.
  void roll(double now);
  /// Emits the rows for the window [t0, t1); `width` is t1 - t0 except
  /// for the run's truncated final window.
  void flush_window(double t1, double width);
  void global_row(const char* series, double value);

  TimeSeriesOptions options_;
  std::vector<Row> rows_;
  stats::TailSummary overall_;

  std::uint32_t run_ = 0;
  std::uint64_t window_ = 0;
  double t0_ = 0.0;
  std::vector<ServerState> servers_;
  std::uint64_t inflight_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t suppressed_ = 0;
  /// Fault-layer series, emitted only once a run has seen a fault hook so
  /// fault-free runs produce byte-identical CSVs to the pre-fault schema.
  bool faults_seen_ = false;
  std::uint64_t faults_active_ = 0;
  std::uint64_t fault_begins_ = 0;
  std::uint64_t fault_copies_failed_ = 0;
  /// Fork-join fan-out series, gated the same way: fanout-free runs keep
  /// the pre-fanout CSV schema byte-identical.
  bool fanout_seen_ = false;
  std::uint64_t siblings_dispatched_ = 0;
  std::uint64_t group_completes_ = 0;
  std::optional<stats::TailSummary> window_tail_;
};

}  // namespace reissue::obs
