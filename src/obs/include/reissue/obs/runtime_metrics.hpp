// Prometheus-style text exposition of the runtime stats snapshots
// (ReissueClientStats, ThreadPoolStats).
//
// The live client/executor expose point-in-time stats() structs; this
// renders them in the Prometheus text format (text/plain; version 0.0.4:
// "# HELP"/"# TYPE" comments, one "name value" sample per line, counters
// suffixed _total) so any scrape-file collector (node_exporter textfile
// collector, vector, telegraf) ingests a live run without bespoke glue.
// Pull-based scraping would need an HTTP server dependency; the repo's
// deployment model is "write a file, let the host agent ship it", hence
// write_text_atomic — rewrite via temp file + rename so a concurrent
// reader never sees a torn exposition.
#pragma once

#include <string>

#include "reissue/runtime/executor.hpp"
#include "reissue/runtime/reissue_client.hpp"

namespace reissue::obs {

/// Renders a client snapshot (and optionally an executor snapshot) as
/// Prometheus text exposition.  Field order is fixed, so two snapshots
/// with equal values render byte-identically.
[[nodiscard]] std::string format_prometheus(
    const runtime::ReissueClientStats& client,
    const runtime::ThreadPoolStats* pool = nullptr);

/// Atomically replaces `path` with `text` (temp file in the same
/// directory + rename).  Throws std::runtime_error on I/O failure.
void write_text_atomic(const std::string& path, const std::string& text);

}  // namespace reissue::obs
