// ClientEventSink adapter writing live-serving events into a TraceRing.
//
// The sim's RingTraceObserver and this tracer produce the same 32-byte
// binary format, so `reissue_cli trace-summarize` digests a live loadgen
// run exactly like a simulated sweep.  Event mapping:
//
//   on_submit             -> kArrival   (ts = wall-clock ms since run start)
//   on_reissue_issued     -> kReissueIssued
//   on_reissue_suppressed -> kReissueSuppressedCompletion / ...Coin
//   on_first_response     -> kQueryDone (value = latency ms,
//                            copy = 1 when a reissue copy won)
//
// Unlike the sim observer, hooks arrive from multiple threads (submitter,
// reissue thread, pool workers), so pushes are serialized by a mutex —
// that cost exists only when a tracer is installed; a null sink keeps the
// client's zero-cost default.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "reissue/obs/trace_ring.hpp"
#include "reissue/runtime/reissue_client.hpp"

namespace reissue::obs {

class RuntimeRingTracer final : public runtime::ClientEventSink {
 public:
  explicit RuntimeRingTracer(std::size_t capacity) : ring_(capacity) {}

  void on_submit(double now_ms, std::uint64_t query) override;
  void on_reissue_issued(double now_ms, std::uint64_t query,
                         std::uint16_t stage) override;
  void on_reissue_suppressed(double now_ms, std::uint64_t query,
                             std::uint16_t stage, bool by_completion) override;
  void on_first_response(double now_ms, std::uint64_t query,
                         double latency_ms, bool from_reissue) override;

  /// Run framing, mirroring the sim's kRunBegin / kRunEnd records:
  /// begin carries (value = offered rate, query = seed, server = workers);
  /// end carries (ts = run length ms, value = achieved throughput qps).
  void push_run_begin(double rate_per_s, std::uint64_t seed,
                      std::uint32_t workers);
  void push_run_end(double run_ms, double achieved_qps);

  /// Serializes the ring via write_trace_ring (locked snapshot).
  void write(const std::string& path) const;

  [[nodiscard]] std::uint64_t total_pushed() const {
    std::lock_guard lock(mutex_);
    return ring_.total_pushed();
  }

  /// Locked copy of the retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::lock_guard lock(mutex_);
    return ring_.snapshot();
  }

 private:
  void push(TraceEventKind kind, double ts, double value, std::uint64_t query,
            std::uint32_t server, std::uint16_t stage, std::uint8_t copy);

  mutable std::mutex mutex_;
  TraceRing ring_;
};

}  // namespace reissue::obs
