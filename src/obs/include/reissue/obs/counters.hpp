// Run introspection primitives: counter accumulation, wall-clock phase
// timers, and observer fan-out.
//
// The simulator maintains sim::RunCounters itself while any observer is
// attached (sim/sim_observer.hpp); this header supplies the consumer side
// — a thread-safe accumulator whose on_run_end collects counters across
// every run of a sweep (workers run concurrently, so the accumulator is
// the one place a lock appears), a registry of named wall-clock phase
// timers for the experiment pipeline (plan/train/optimize/evaluate/
// aggregate), and a MultiObserver for composing several observers on one
// Cluster.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "reissue/sim/sim_observer.hpp"

namespace reissue::obs {

/// Accumulates the simulator's whole-run counters across runs.  All hooks
/// except on_run_end are inherited no-ops, so attaching one costs nothing
/// measurable on the hot path; on_run_end locks, which is fine at
/// once-per-run frequency.  Safe to share across sweep worker threads.
class CountingObserver final : public sim::SimObserver {
 public:
  void on_run_end(double /*horizon*/, double /*utilization*/,
                  const sim::RunCounters& counters) override {
    std::lock_guard lock(mutex_);
    total_ += counters;
    ++runs_;
  }

  [[nodiscard]] sim::RunCounters total() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

  [[nodiscard]] std::uint64_t runs() const {
    std::lock_guard lock(mutex_);
    return runs_;
  }

 private:
  mutable std::mutex mutex_;
  sim::RunCounters total_;
  std::uint64_t runs_ = 0;
};

/// Counter glossary block for `sweep --stats`: one "name value" line per
/// counter, in a fixed order (see README "Observability" for meanings).
[[nodiscard]] std::string format_counters(const sim::RunCounters& counters,
                                          std::uint64_t runs);

/// Named wall-clock phase accumulators.  Thread-safe; phases are summed
/// across threads, so with a worker pool the totals can exceed elapsed
/// wall time (they measure where the CPUs went, not the critical path).
class PhaseTimers {
 public:
  struct Entry {
    std::string phase;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  void add(const std::string& phase, double seconds) {
    std::lock_guard lock(mutex_);
    Phase& p = phases_[phase];
    p.seconds += seconds;
    ++p.count;
  }

  /// Sorted by phase name (std::map order) — deterministic output.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::lock_guard lock(mutex_);
    std::vector<Entry> out;
    out.reserve(phases_.size());
    for (const auto& [name, p] : phases_) {
      out.push_back(Entry{name, p.seconds, p.count});
    }
    return out;
  }

 private:
  struct Phase {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Phase> phases_;
};

/// "phase seconds count" lines in entries() order.
[[nodiscard]] std::string format_timers(const PhaseTimers& timers);

/// RAII phase scope: accumulates the enclosed wall time into `timers`
/// under `phase`.  A null `timers` makes the scope free — call sites
/// never need their own guard.
class PhaseTimer {
 public:
  PhaseTimer(PhaseTimers* timers, const char* phase)
      : timers_(timers), phase_(phase) {
    if (timers_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (timers_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timers_->add(phase_, std::chrono::duration<double>(elapsed).count());
  }

 private:
  PhaseTimers* timers_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_{};
};

/// Forwards every hook to each child, in order.  Children must outlive
/// the MultiObserver's runs; thread safety is the children's concern.
class MultiObserver final : public sim::SimObserver {
 public:
  /// Null children are ignored (lets callers add optional observers
  /// unconditionally).
  void add(sim::SimObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  [[nodiscard]] bool empty() const noexcept { return children_.empty(); }

  void on_run_begin(const RunInfo& run) override {
    for (auto* c : children_) c->on_run_begin(run);
  }
  void on_arrival(double now, std::uint64_t query) override {
    for (auto* c : children_) c->on_arrival(now, query);
  }
  void on_reissue_scheduled(double now, std::uint64_t query,
                            std::uint16_t stage, double fire_time) override {
    for (auto* c : children_) {
      c->on_reissue_scheduled(now, query, stage, fire_time);
    }
  }
  void on_reissue_issued(double now, std::uint64_t query,
                         std::uint16_t stage) override {
    for (auto* c : children_) c->on_reissue_issued(now, query, stage);
  }
  void on_reissue_suppressed(double now, std::uint64_t query,
                             std::uint16_t stage, bool by_completion) override {
    for (auto* c : children_) {
      c->on_reissue_suppressed(now, query, stage, by_completion);
    }
  }
  void on_dispatch(double now, std::uint64_t query, sim::CopyKind kind,
                   std::uint32_t copy_index, std::uint32_t server,
                   double service_time) override {
    for (auto* c : children_) {
      c->on_dispatch(now, query, kind, copy_index, server, service_time);
    }
  }
  void on_service_start(double now, std::uint32_t server,
                        const sim::Request& request, double cost) override {
    for (auto* c : children_) c->on_service_start(now, server, request, cost);
  }
  void on_copy_cancelled(double now, std::uint32_t server, std::uint64_t query,
                         std::uint32_t copy_index) override {
    for (auto* c : children_) {
      c->on_copy_cancelled(now, server, query, copy_index);
    }
  }
  void on_copy_complete(double now, std::uint64_t query, sim::CopyKind kind,
                        std::uint32_t copy_index, double response) override {
    for (auto* c : children_) {
      c->on_copy_complete(now, query, kind, copy_index, response);
    }
  }
  void on_query_done(double now, std::uint64_t query, double latency) override {
    for (auto* c : children_) c->on_query_done(now, query, latency);
  }
  void on_group_complete(double now, std::uint64_t query,
                         std::uint32_t responded, sim::CopyKind winner_kind,
                         std::uint32_t winner_copy) override {
    for (auto* c : children_) {
      c->on_group_complete(now, query, responded, winner_kind, winner_copy);
    }
  }
  void on_server_state(double now, std::uint32_t server, std::size_t queued,
                       bool busy) override {
    for (auto* c : children_) c->on_server_state(now, server, queued, busy);
  }
  void on_interference(double now, std::uint32_t server,
                       double duration) override {
    for (auto* c : children_) c->on_interference(now, server, duration);
  }
  void on_fault_begin(double now, std::uint32_t server, sim::FaultKind fault,
                      double duration) override {
    for (auto* c : children_) c->on_fault_begin(now, server, fault, duration);
  }
  void on_fault_end(double now, std::uint32_t server,
                    sim::FaultKind fault) override {
    for (auto* c : children_) c->on_fault_end(now, server, fault);
  }
  void on_dispatch_failed(double now, std::uint64_t query, sim::CopyKind kind,
                          std::uint32_t copy_index,
                          std::uint32_t server) override {
    for (auto* c : children_) {
      c->on_dispatch_failed(now, query, kind, copy_index, server);
    }
  }
  void on_run_end(double horizon, double utilization,
                  const sim::RunCounters& counters) override {
    for (auto* c : children_) c->on_run_end(horizon, utilization, counters);
  }

 private:
  std::vector<sim::SimObserver*> children_;
};

}  // namespace reissue::obs
