// Chrome trace-event JSON emission (TraceObserver).
//
// Produces the JSON object format of the Trace Event spec — loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing — from the simulator's
// SimObserver hooks.  Layout: each run becomes one "process" (pid = run
// ordinal), with tid 0 the client track (instants: arrival, reissue
// scheduled/issued/suppressed, cancellation, query done) and tid 1+s the
// span track of server s ("X" complete events at service start, duration
// = actual occupancy).  Infinite-server runs fan spans across a fixed set
// of lanes (query id mod kInfiniteLanes) since there is no server
// identity to track.  Per-server queue depth goes out as "C" counter
// events so Perfetto renders depth graphs.
//
// One simulated time unit is mapped to one microsecond of trace time
// (Chrome's native ts unit); simulated time is unitless anyway.
//
// Intended for small diagnostic runs: the emitter favors schema clarity
// over volume.  High-volume runs should use the binary ring
// (obs/trace_ring.hpp) instead.
#pragma once

#include <cstdint>
#include <ostream>

#include "reissue/sim/sim_observer.hpp"

namespace reissue::obs {

struct TraceObserverOptions {
  /// Emit "reissue-scheduled" instants at arrival (one per policy stage).
  bool scheduled_instants = true;
  /// Emit "dispatch" instants (largely redundant with service spans).
  bool dispatch_instants = false;
  /// Emit per-server queue-depth counter events.
  bool counter_events = true;
  /// Emit "response" instants at copy completion (redundant with span
  /// ends; useful when grepping the JSON rather than viewing it).
  bool response_instants = false;
};

class TraceObserver final : public sim::SimObserver {
 public:
  /// Span lanes for infinite-server runs.
  static constexpr std::uint32_t kInfiniteLanes = 32;

  /// Starts the JSON document on `out`; the stream must outlive the
  /// observer.  Not thread-safe: trace one single-threaded sweep.
  explicit TraceObserver(std::ostream& out, TraceObserverOptions options = {});
  ~TraceObserver() override;

  TraceObserver(const TraceObserver&) = delete;
  TraceObserver& operator=(const TraceObserver&) = delete;

  /// Closes the JSON document; idempotent (the destructor calls it).
  void finish();

  void on_run_begin(const RunInfo& run) override;
  void on_arrival(double now, std::uint64_t query) override;
  void on_reissue_scheduled(double now, std::uint64_t query,
                            std::uint16_t stage, double fire_time) override;
  void on_reissue_issued(double now, std::uint64_t query,
                         std::uint16_t stage) override;
  void on_reissue_suppressed(double now, std::uint64_t query,
                             std::uint16_t stage, bool by_completion) override;
  void on_dispatch(double now, std::uint64_t query, sim::CopyKind kind,
                   std::uint32_t copy_index, std::uint32_t server,
                   double service_time) override;
  void on_service_start(double now, std::uint32_t server,
                        const sim::Request& request, double cost) override;
  void on_copy_cancelled(double now, std::uint32_t server, std::uint64_t query,
                         std::uint32_t copy_index) override;
  void on_copy_complete(double now, std::uint64_t query, sim::CopyKind kind,
                        std::uint32_t copy_index, double response) override;
  void on_query_done(double now, std::uint64_t query, double latency) override;
  void on_group_complete(double now, std::uint64_t query,
                         std::uint32_t responded, sim::CopyKind winner_kind,
                         std::uint32_t winner_copy) override;
  void on_server_state(double now, std::uint32_t server, std::size_t queued,
                       bool busy) override;
  void on_interference(double now, std::uint32_t server,
                       double duration) override;
  void on_fault_begin(double now, std::uint32_t server, sim::FaultKind fault,
                      double duration) override;
  void on_dispatch_failed(double now, std::uint64_t query, sim::CopyKind kind,
                          std::uint32_t copy_index,
                          std::uint32_t server) override;

 private:
  /// Comma/newline bookkeeping before each event object.
  void begin_event();
  void metadata(const char* kind, std::uint32_t tid, const char* name,
                std::uint64_t name_suffix, bool suffixed);
  /// Client-track instant: {"name":…,"ph":"i","s":"t",…,"args":{…}}.
  void instant(double ts, const char* name, std::uint64_t query,
               std::int64_t stage);
  [[nodiscard]] std::uint32_t span_tid(std::uint32_t server,
                                       std::uint64_t query) const;

  std::ostream& out_;
  TraceObserverOptions options_;
  bool first_ = true;
  bool finished_ = false;
  std::uint32_t run_ = 0;  // current pid (1-based once a run begins)
  bool infinite_ = false;
};

}  // namespace reissue::obs
