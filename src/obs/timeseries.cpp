#include "reissue/obs/timeseries.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

namespace reissue::obs {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

}  // namespace

TimeSeriesObserver::TimeSeriesObserver(TimeSeriesOptions options)
    : options_(options), overall_(options.percentile) {
  if (!(options_.window > 0.0)) {
    throw std::invalid_argument("TimeSeriesObserver: window must be > 0");
  }
  if (!(options_.percentile > 0.0 && options_.percentile < 1.0)) {
    throw std::invalid_argument(
        "TimeSeriesObserver: percentile must be in (0,1)");
  }
}

void TimeSeriesObserver::on_run_begin(const RunInfo& run) {
  ++run_;
  window_ = 0;
  t0_ = 0.0;
  servers_.assign(run.infinite_servers ? 0 : run.servers, ServerState{});
  inflight_ = 0;
  completions_ = 0;
  issued_ = 0;
  suppressed_ = 0;
  faults_seen_ = false;
  faults_active_ = 0;
  fault_begins_ = 0;
  fault_copies_failed_ = 0;
  fanout_seen_ = false;
  siblings_dispatched_ = 0;
  group_completes_ = 0;
  window_tail_.emplace(options_.percentile);
}

void TimeSeriesObserver::global_row(const char* series, double value) {
  rows_.push_back(Row{run_, window_, t0_, t0_ + options_.window, series, -1,
                      value});
}

void TimeSeriesObserver::flush_window(double t1, double width) {
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerState& state = servers_[s];
    // Integrate the current busy stretch up to the boundary.
    if (state.busy) state.busy_accum += t1 - state.last_change;
    state.last_change = t1;
    const double fraction = width > 0.0 ? state.busy_accum / width : 0.0;
    rows_.push_back(Row{run_, window_, t0_, t1, "busy_fraction",
                        static_cast<std::int64_t>(s), fraction});
    rows_.push_back(Row{run_, window_, t0_, t1, "queue_depth",
                        static_cast<std::int64_t>(s),
                        static_cast<double>(state.depth)});
    state.busy_accum = 0.0;
  }
  rows_.push_back(Row{run_, window_, t0_, t1, "inflight_reissues", -1,
                      static_cast<double>(inflight_)});
  rows_.push_back(Row{run_, window_, t0_, t1, "completions", -1,
                      static_cast<double>(completions_)});
  rows_.push_back(Row{run_, window_, t0_, t1, "reissues_issued", -1,
                      static_cast<double>(issued_)});
  rows_.push_back(Row{run_, window_, t0_, t1, "reissues_suppressed", -1,
                      static_cast<double>(suppressed_)});
  if (faults_seen_) {
    // Boundary point sample of active fault episodes (server-episodes),
    // plus windowed begin / failed-copy counts.
    rows_.push_back(Row{run_, window_, t0_, t1, "faults_active", -1,
                        static_cast<double>(faults_active_)});
    rows_.push_back(Row{run_, window_, t0_, t1, "fault_begins", -1,
                        static_cast<double>(fault_begins_)});
    rows_.push_back(Row{run_, window_, t0_, t1, "fault_copies_failed", -1,
                        static_cast<double>(fault_copies_failed_)});
  }
  if (fanout_seen_) {
    // Windowed sibling dispatches (crash re-dispatches included) and
    // k-of-n group completions.
    rows_.push_back(Row{run_, window_, t0_, t1, "siblings_dispatched", -1,
                        static_cast<double>(siblings_dispatched_)});
    rows_.push_back(Row{run_, window_, t0_, t1, "group_completes", -1,
                        static_cast<double>(group_completes_)});
  }
  if (window_tail_->count() > 0) {
    rows_.push_back(Row{run_, window_, t0_, t1, "latency_mean", -1,
                        window_tail_->mean()});
    rows_.push_back(Row{run_, window_, t0_, t1, "latency_p", -1,
                        window_tail_->quantile()});
    rows_.push_back(Row{run_, window_, t0_, t1, "latency_psquare", -1,
                        window_tail_->psquare()});
  }
  completions_ = 0;
  issued_ = 0;
  suppressed_ = 0;
  fault_begins_ = 0;
  fault_copies_failed_ = 0;
  siblings_dispatched_ = 0;
  group_completes_ = 0;
  window_tail_.emplace(options_.percentile);
}

void TimeSeriesObserver::roll(double now) {
  while (now >= t0_ + options_.window) {
    const double t1 = t0_ + options_.window;
    flush_window(t1, options_.window);
    t0_ = t1;
    ++window_;
  }
}

void TimeSeriesObserver::on_arrival(double now, std::uint64_t /*query*/) {
  roll(now);
}

void TimeSeriesObserver::on_reissue_issued(double now,
                                           std::uint64_t /*query*/,
                                           std::uint16_t /*stage*/) {
  roll(now);
  ++inflight_;
  ++issued_;
}

void TimeSeriesObserver::on_reissue_suppressed(double /*now*/,
                                               std::uint64_t /*query*/,
                                               std::uint16_t /*stage*/,
                                               bool /*by_completion*/) {
  // Retired suppressions report their would-be fire time, which can be
  // ahead of the loop's current time — never roll windows forward off
  // them; attribute to the window being filled.
  ++suppressed_;
}

void TimeSeriesObserver::on_dispatch(double now, std::uint64_t /*query*/,
                                     sim::CopyKind kind,
                                     std::uint32_t /*copy_index*/,
                                     std::uint32_t /*server*/,
                                     double /*service_time*/) {
  roll(now);
  if (kind == sim::CopyKind::kSibling) {
    fanout_seen_ = true;
    ++siblings_dispatched_;
  }
}

void TimeSeriesObserver::on_copy_complete(double now, std::uint64_t /*query*/,
                                          sim::CopyKind kind,
                                          std::uint32_t /*copy_index*/,
                                          double /*response*/) {
  roll(now);
  if (kind == sim::CopyKind::kReissue && inflight_ > 0) --inflight_;
}

void TimeSeriesObserver::on_query_done(double now, std::uint64_t /*query*/,
                                       double latency) {
  roll(now);
  ++completions_;
  window_tail_->add(latency);
  overall_.add(latency);
}

void TimeSeriesObserver::on_group_complete(double now, std::uint64_t /*query*/,
                                           std::uint32_t /*responded*/,
                                           sim::CopyKind /*winner_kind*/,
                                           std::uint32_t /*winner_copy*/) {
  roll(now);
  fanout_seen_ = true;
  ++group_completes_;
}

void TimeSeriesObserver::on_server_state(double now, std::uint32_t server,
                                         std::size_t queued, bool busy) {
  roll(now);
  if (server >= servers_.size()) return;
  ServerState& state = servers_[server];
  if (state.busy) state.busy_accum += now - state.last_change;
  state.last_change = now;
  state.busy = busy;
  state.depth = queued;
}

void TimeSeriesObserver::on_fault_begin(double now, std::uint32_t /*server*/,
                                        sim::FaultKind /*fault*/,
                                        double /*duration*/) {
  roll(now);
  faults_seen_ = true;
  ++faults_active_;
  ++fault_begins_;
}

void TimeSeriesObserver::on_fault_end(double now, std::uint32_t /*server*/,
                                      sim::FaultKind /*fault*/) {
  roll(now);
  if (faults_active_ > 0) --faults_active_;
}

void TimeSeriesObserver::on_dispatch_failed(double now,
                                            std::uint64_t /*query*/,
                                            sim::CopyKind /*kind*/,
                                            std::uint32_t /*copy_index*/,
                                            std::uint32_t /*server*/) {
  roll(now);
  faults_seen_ = true;
  ++fault_copies_failed_;
}

void TimeSeriesObserver::on_run_end(double horizon, double /*utilization*/,
                                    const sim::RunCounters& /*counters*/) {
  roll(horizon);
  // Truncated final window (skipped when the horizon landed exactly on a
  // boundary and nothing accumulated after it).
  const double width = horizon - t0_;
  if (width > 0.0 || completions_ > 0 || issued_ > 0 || suppressed_ > 0) {
    flush_window(horizon, width);
  }
}

void TimeSeriesObserver::write_csv(std::ostream& out) const {
  out << kCsvHeader << '\n';
  for (const Row& row : rows_) {
    out << row.run << ',' << row.window << ',' << fmt(row.t_start) << ','
        << fmt(row.t_end) << ',' << row.series << ',';
    if (row.server >= 0) out << row.server;
    out << ',' << fmt(row.value) << '\n';
  }
}

}  // namespace reissue::obs
