#include "reissue/obs/trace.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

namespace reissue::obs {

namespace {

/// Shortest round-trip decimal (matches the CSV writers' convention).
std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

const char* copy_name(sim::CopyKind kind) {
  switch (kind) {
    case sim::CopyKind::kPrimary:
      return "primary";
    case sim::CopyKind::kReissue:
      return "reissue";
    case sim::CopyKind::kBackground:
      return "background";
    case sim::CopyKind::kSibling:
      return "sibling";
  }
  return "?";
}

const char* fault_name(sim::FaultKind fault) {
  switch (fault) {
    case sim::FaultKind::kSlowdown:
      return "slowdown";
    case sim::FaultKind::kDegrade:
      return "degrade";
    case sim::FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

}  // namespace

TraceObserver::TraceObserver(std::ostream& out, TraceObserverOptions options)
    : out_(out), options_(options) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

TraceObserver::~TraceObserver() { finish(); }

void TraceObserver::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

void TraceObserver::begin_event() {
  out_ << (first_ ? "\n" : ",\n");
  first_ = false;
}

void TraceObserver::metadata(const char* kind, std::uint32_t tid,
                             const char* name, std::uint64_t name_suffix,
                             bool suffixed) {
  begin_event();
  out_ << "{\"ph\":\"M\",\"name\":\"" << kind << "\",\"pid\":" << run_
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name;
  if (suffixed) out_ << name_suffix;
  out_ << "\"}}";
}

std::uint32_t TraceObserver::span_tid(std::uint32_t server,
                                      std::uint64_t query) const {
  if (server == kNoServer) {
    return 1 + static_cast<std::uint32_t>(query % kInfiniteLanes);
  }
  return 1 + server;
}

void TraceObserver::on_run_begin(const RunInfo& run) {
  ++run_;
  infinite_ = run.infinite_servers;
  metadata("process_name", 0, "run ", run_, true);
  metadata("thread_name", 0, "client", 0, false);
  if (run.infinite_servers) {
    for (std::uint32_t lane = 0; lane < kInfiniteLanes; ++lane) {
      metadata("thread_name", 1 + lane, "lane ", lane, true);
    }
  } else {
    for (std::uint32_t s = 0; s < run.servers; ++s) {
      metadata("thread_name", 1 + s, "server ", s, true);
    }
  }
}

void TraceObserver::instant(double ts, const char* name, std::uint64_t query,
                            std::int64_t stage) {
  begin_event();
  out_ << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(ts) << ",\"args\":{\"q\":"
       << query;
  if (stage >= 0) out_ << ",\"stage\":" << stage;
  out_ << "}}";
}

void TraceObserver::on_arrival(double now, std::uint64_t query) {
  instant(now, "arrival", query, -1);
}

void TraceObserver::on_reissue_scheduled(double now, std::uint64_t query,
                                         std::uint16_t stage,
                                         double fire_time) {
  if (!options_.scheduled_instants) return;
  begin_event();
  out_ << "{\"name\":\"reissue-scheduled\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":"
       << query << ",\"stage\":" << stage << ",\"fire\":" << fmt(fire_time)
       << "}}";
}

void TraceObserver::on_reissue_issued(double now, std::uint64_t query,
                                      std::uint16_t stage) {
  instant(now, "reissue-issued", query, stage);
}

void TraceObserver::on_reissue_suppressed(double now, std::uint64_t query,
                                          std::uint16_t stage,
                                          bool by_completion) {
  begin_event();
  out_ << "{\"name\":\"reissue-suppressed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":"
       << query << ",\"stage\":" << stage << ",\"by\":\""
       << (by_completion ? "completion" : "coin") << "\"}}";
}

void TraceObserver::on_dispatch(double now, std::uint64_t query,
                                sim::CopyKind kind, std::uint32_t copy_index,
                                std::uint32_t server, double service_time) {
  if (!options_.dispatch_instants) return;
  begin_event();
  out_ << "{\"name\":\"dispatch\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << run_
       << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":" << query
       << ",\"kind\":\"" << copy_name(kind) << "\",\"copy\":" << copy_index;
  if (server != kNoServer) out_ << ",\"server\":" << server;
  out_ << ",\"service\":" << fmt(service_time) << "}}";
}

void TraceObserver::on_service_start(double now, std::uint32_t server,
                                     const sim::Request& request,
                                     double cost) {
  begin_event();
  out_ << "{\"name\":\"" << copy_name(request.kind)
       << "\",\"ph\":\"X\",\"pid\":" << run_ << ",\"tid\":"
       << span_tid(server, request.query_id) << ",\"ts\":" << fmt(now)
       << ",\"dur\":" << fmt(cost) << ",\"args\":{";
  if (request.kind != sim::CopyKind::kBackground) {
    out_ << "\"q\":" << request.query_id << ",\"copy\":" << request.copy_index;
  }
  out_ << "}}";
}

void TraceObserver::on_copy_cancelled(double now, std::uint32_t server,
                                      std::uint64_t query,
                                      std::uint32_t copy_index) {
  begin_event();
  out_ << "{\"name\":\"cancel\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << run_
       << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":" << query
       << ",\"copy\":" << copy_index << ",\"server\":" << server << "}}";
}

void TraceObserver::on_copy_complete(double now, std::uint64_t query,
                                     sim::CopyKind kind,
                                     std::uint32_t copy_index,
                                     double response) {
  if (!options_.response_instants) return;
  begin_event();
  out_ << "{\"name\":\"response\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << run_
       << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":" << query
       << ",\"kind\":\"" << copy_name(kind) << "\",\"copy\":" << copy_index
       << ",\"response\":" << fmt(response) << "}}";
}

void TraceObserver::on_query_done(double now, std::uint64_t query,
                                  double latency) {
  begin_event();
  out_ << "{\"name\":\"done\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << run_
       << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":" << query
       << ",\"latency\":" << fmt(latency) << "}}";
}

void TraceObserver::on_group_complete(double now, std::uint64_t query,
                                      std::uint32_t responded,
                                      sim::CopyKind winner_kind,
                                      std::uint32_t winner_copy) {
  begin_event();
  out_ << "{\"name\":\"group-complete\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":"
       << query << ",\"responded\":" << responded << ",\"winner\":\""
       << copy_name(winner_kind) << "\",\"copy\":" << winner_copy << "}}";
}

void TraceObserver::on_server_state(double now, std::uint32_t server,
                                    std::size_t queued, bool /*busy*/) {
  if (!options_.counter_events) return;
  begin_event();
  out_ << "{\"name\":\"queue\",\"ph\":\"C\",\"pid\":" << run_
       << ",\"ts\":" << fmt(now) << ",\"args\":{\"s" << server
       << "\":" << queued << "}}";
}

void TraceObserver::on_interference(double now, std::uint32_t server,
                                    double duration) {
  begin_event();
  out_ << "{\"name\":\"interference\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"server\":"
       << server << ",\"duration\":" << fmt(duration) << "}}";
}

void TraceObserver::on_fault_begin(double now, std::uint32_t server,
                                   sim::FaultKind fault, double duration) {
  // The whole episode is known up front, so it renders as a complete span
  // on the afflicted server's lane; on_fault_end needs no event.
  begin_event();
  out_ << "{\"name\":\"fault-" << fault_name(fault)
       << "\",\"ph\":\"X\",\"pid\":" << run_ << ",\"tid\":"
       << span_tid(server, 0) << ",\"ts\":" << fmt(now) << ",\"dur\":"
       << fmt(duration) << ",\"args\":{\"server\":" << server << "}}";
}

void TraceObserver::on_dispatch_failed(double now, std::uint64_t query,
                                       sim::CopyKind kind,
                                       std::uint32_t copy_index,
                                       std::uint32_t server) {
  begin_event();
  out_ << "{\"name\":\"dispatch-failed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":"
       << run_ << ",\"tid\":0,\"ts\":" << fmt(now) << ",\"args\":{\"q\":"
       << query << ",\"kind\":\"" << copy_name(kind) << "\",\"copy\":"
       << copy_index;
  if (server != kNoServer) out_ << ",\"server\":" << server;
  out_ << "}}";
}

}  // namespace reissue::obs
