#include "reissue/obs/counters.hpp"

#include <charconv>
#include <stdexcept>

namespace reissue::obs {

namespace {

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

void line(std::string& out, const char* name, std::uint64_t value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string format_counters(const sim::RunCounters& c, std::uint64_t runs) {
  std::string out;
  line(out, "runs", runs);
  line(out, "arrivals", c.arrivals);
  line(out, "heap_pops", c.heap_pops);
  line(out, "scan_pops", c.scan_pops);
  line(out, "stage_checks", c.stage_checks);
  line(out, "stage_retired", c.stage_retired);
  line(out, "reissues_issued", c.reissues_issued);
  line(out, "reissues_suppressed_completed", c.reissues_suppressed_completed);
  line(out, "reissues_suppressed_coin", c.reissues_suppressed_coin);
  line(out, "reissues_wasted", c.reissues_wasted);
  line(out, "copies_cancelled", c.copies_cancelled);
  line(out, "interference_episodes", c.interference_episodes);
  line(out, "fault_slowdowns", c.fault_slowdowns);
  line(out, "fault_degrades", c.fault_degrades);
  line(out, "fault_crashes", c.fault_crashes);
  line(out, "fault_copies_failed", c.fault_copies_failed);
  line(out, "fault_dispatch_rejections", c.fault_dispatch_rejections);
  line(out, "fault_primary_retries", c.fault_primary_retries);
  line(out, "siblings_issued", c.siblings_issued);
  line(out, "sibling_wins", c.sibling_wins);
  line(out, "siblings_cancelled", c.siblings_cancelled);
  line(out, "siblings_wasted", c.siblings_wasted);
  line(out, "reissue_inflight_peak", c.reissue_inflight_peak);
  line(out, "arena_slots_high_water", c.arena_slots);
  return out;
}

std::string format_timers(const PhaseTimers& timers) {
  std::string out;
  for (const auto& entry : timers.entries()) {
    out += entry.phase;
    out += ' ';
    out += fmt(entry.seconds);
    out += "s x";
    out += std::to_string(entry.count);
    out += '\n';
  }
  return out;
}

}  // namespace reissue::obs
