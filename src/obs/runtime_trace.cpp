#include "reissue/obs/runtime_trace.hpp"

namespace reissue::obs {

void RuntimeRingTracer::push(TraceEventKind kind, double ts, double value,
                             std::uint64_t query, std::uint32_t server,
                             std::uint16_t stage, std::uint8_t copy) {
  TraceRecord r;
  r.ts = ts;
  r.value = value;
  r.query = query;
  r.server = server;
  r.stage = stage;
  r.event = static_cast<std::uint8_t>(kind);
  r.copy = copy;
  std::lock_guard lock(mutex_);
  ring_.push(r);
}

void RuntimeRingTracer::on_submit(double now_ms, std::uint64_t query) {
  push(TraceEventKind::kArrival, now_ms, 0.0, query, 0, 0, 0);
}

void RuntimeRingTracer::on_reissue_issued(double now_ms, std::uint64_t query,
                                          std::uint16_t stage) {
  push(TraceEventKind::kReissueIssued, now_ms, 0.0, query, 0, stage, 0);
}

void RuntimeRingTracer::on_reissue_suppressed(double now_ms,
                                              std::uint64_t query,
                                              std::uint16_t stage,
                                              bool by_completion) {
  push(by_completion ? TraceEventKind::kReissueSuppressedCompletion
                     : TraceEventKind::kReissueSuppressedCoin,
       now_ms, 0.0, query, 0, stage, 0);
}

void RuntimeRingTracer::on_first_response(double now_ms, std::uint64_t query,
                                          double latency_ms,
                                          bool from_reissue) {
  push(TraceEventKind::kQueryDone, now_ms, latency_ms, query, 0, 0,
       from_reissue ? 1 : 0);
}

void RuntimeRingTracer::push_run_begin(double rate_per_s, std::uint64_t seed,
                                       std::uint32_t workers) {
  push(TraceEventKind::kRunBegin, 0.0, rate_per_s, seed, workers, 0, 0);
}

void RuntimeRingTracer::push_run_end(double run_ms, double achieved_qps) {
  push(TraceEventKind::kRunEnd, run_ms, achieved_qps, 0, 0, 0, 0);
}

void RuntimeRingTracer::write(const std::string& path) const {
  // Snapshot under the lock, serialize outside it: concurrent pushes
  // during file I/O cannot tear a record.
  std::vector<TraceRecord> records;
  std::uint64_t total = 0;
  {
    std::lock_guard lock(mutex_);
    records = ring_.snapshot();
    total = ring_.total_pushed();
  }
  write_trace_ring(path, records, total);
}

}  // namespace reissue::obs
