#include "reissue/stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reissue::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

MeanInterval mean_ci95(const RunningStats& stats) {
  MeanInterval interval;
  interval.mean = stats.mean();
  const std::size_t n = stats.count();
  if (n <= 1) return interval;
  // Two-sided 95% Student-t critical values for df = 1..30; z beyond.
  static constexpr double kT95[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t df = n - 1;
  const double t = df <= 30 ? kT95[df - 1] : 1.960;
  // RunningStats::variance is the population variance m2/n; the CI needs
  // the unbiased sample variance m2/(n-1).
  const double sample_var =
      stats.variance() * static_cast<double>(n) / static_cast<double>(df);
  interval.half_width = t * std::sqrt(sample_var / static_cast<double>(n));
  return interval;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty sample");
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile p must be in [0,100]");
  }
  if (p == 0.0) return sorted.front();
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace reissue::stats
