#include "reissue/stats/kolmogorov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reissue::stats {

double ks_distance(std::vector<double> samples,
                   const std::function<double(double)>& cdf) {
  if (samples.empty()) throw std::invalid_argument("ks_distance: empty sample");
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double ks_distance_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_distance_two_sample: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    // Advance past the full tie group in both samples before comparing,
    // so identical samples measure distance 0.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace reissue::stats
