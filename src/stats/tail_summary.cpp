#include "reissue/stats/tail_summary.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace reissue::stats {

namespace {

/// ceil for values far inside the int64 range, without the libm call the
/// generic x86-64 baseline would emit.
std::int64_t ceil_to_int64(double y) {
  auto i = static_cast<std::int64_t>(y);
  if (static_cast<double>(i) < y) ++i;
  return i;
}

/// log2(1 + k/256) for k = 0..256; linear interpolation between entries
/// has error < (1/256)^2 / (8 ln 2) ~ 2.8e-6 in log2.  Function-local
/// static (not a namespace-scope global): lazy init is immune to static-
/// initialization order, and the TailSummary constructor pre-touches it
/// so the hot path only pays the guard's predicted branch.
const std::array<double, 257>& log2_mantissa_table() {
  static const std::array<double, 257> table = [] {
    std::array<double, 257> t{};
    for (std::size_t k = 0; k <= 256; ++k) {
      t[k] = std::log2(1.0 + static_cast<double>(k) / 256.0);
    }
    return t;
  }();
  return table;
}

}  // namespace

TailSummary::TailSummary(double percentile, double relative_error)
    : percentile_(percentile),
      gamma_(1.0 + relative_error),
      log2_gamma_inv_(1.0 / std::log2(1.0 + relative_error)),
      sketch_(percentile) {
  if (!(percentile > 0.0 && percentile < 1.0)) {
    throw std::invalid_argument("TailSummary: percentile must be in (0,1)");
  }
  if (!(relative_error > 0.0 && relative_error <= 0.5)) {
    throw std::invalid_argument(
        "TailSummary: relative_error must be in (0, 0.5]");
  }
  (void)log2_mantissa_table();  // build outside the hot path
}

std::int64_t TailSummary::bucket_index(double x) const {
  if (x < std::numeric_limits<double>::min()) {
    // Subnormal stragglers: exponent bits are zero, take the slow path.
    return ceil_to_int64(std::log2(x) * log2_gamma_inv_);
  }
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const auto exponent =
      static_cast<std::int64_t>((bits >> 52) & 0x7ff) - 1023;
  const std::uint64_t mantissa = bits & ((std::uint64_t{1} << 52) - 1);
  const auto& table = log2_mantissa_table();
  const std::size_t slot = mantissa >> 44;  // top 8 bits
  const double frac =
      static_cast<double>(mantissa & ((std::uint64_t{1} << 44) - 1)) *
      0x1.0p-44;
  const double log2_mantissa =
      table[slot] + frac * (table[slot + 1] - table[slot]);
  return ceil_to_int64((static_cast<double>(exponent) + log2_mantissa) *
                       log2_gamma_inv_);
}

void TailSummary::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  sketch_.add(x);
  if (!(x > 0.0)) {
    ++non_positive_;
    return;
  }
  const std::int64_t index = bucket_index(x);
  if (counts_.empty()) {
    base_ = index;
    counts_.push_back(0);
  } else if (index < base_) {
    // Grow downward (rare: a new global minimum bucket).
    counts_.insert(counts_.begin(),
                   static_cast<std::size_t>(base_ - index), 0);
    base_ = index;
  } else if (index >= base_ + static_cast<std::int64_t>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(index - base_) + 1, 0);
  }
  ++counts_[static_cast<std::size_t>(index - base_)];
}

double TailSummary::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("TailSummary: quantile p must be in [0,1]");
  }
  const std::uint64_t n = count_;
  if (n == 0) return 0.0;
  // Nearest rank, matching EmpiricalCdf::quantile / stats::percentile.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  if (rank <= non_positive_) return min();
  std::uint64_t cumulative = non_positive_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      const double edge = std::pow(
          gamma_, static_cast<double>(base_) + static_cast<double>(i));
      return std::min(edge, max_);
    }
  }
  return max_;  // unreachable unless counts drifted
}

}  // namespace reissue::stats
