#include "reissue/stats/histogram.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reissue::stats {

Histogram::Histogram(double lo, double width, std::size_t bins)
    : lo_(lo), width_(width), counts_(bins, 0) {
  if (width <= 0.0) throw std::invalid_argument("Histogram width must be > 0");
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
}

void Histogram::add(double value) { add_n(value, 1); }

void Histogram::add_n(double value, std::uint64_t n) {
  total_ += n;
  if (value < lo_) {
    underflow_ += n;
    return;
  }
  const double offset = (value - lo_) / width_;
  const auto idx = static_cast<std::size_t>(offset);
  if (idx >= counts_.size()) {
    overflow_ += n;
  } else {
    counts_[idx] += n;
  }
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram bin index");
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::bin_mid(std::size_t i) const {
  return bin_lo(i) + 0.5 * width_;
}

std::string Histogram::to_table(const std::string& label) const {
  std::ostringstream os;
  os << "# " << label << ": bin_mid count\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << bin_mid(i) << " " << counts_[i] << "\n";
  }
  if (overflow_ > 0) os << ">" << bin_hi(counts_.size() - 1) << " " << overflow_ << "\n";
  return os.str();
}

}  // namespace reissue::stats
