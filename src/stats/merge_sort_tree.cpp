#include "reissue/stats/merge_sort_tree.hpp"

#include <algorithm>

namespace reissue::stats {

MergeSortTree::MergeSortTree(std::vector<std::pair<double, double>> points) {
  std::sort(points.begin(), points.end());
  const std::size_t n = points.size();
  xs_.resize(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs_[i] = points[i].first;
    ys[i] = points[i].second;
  }
  if (n > 0) {
    tree_.assign(4 * n, {});
    build(1, 0, n, ys);
  }
}

void MergeSortTree::build(std::size_t node, std::size_t lo, std::size_t hi,
                          const std::vector<double>& ys) {
  if (hi - lo == 1) {
    tree_[node] = {ys[lo]};
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  build(2 * node, lo, mid, ys);
  build(2 * node + 1, mid, hi, ys);
  auto& merged = tree_[node];
  merged.resize(hi - lo);
  std::merge(tree_[2 * node].begin(), tree_[2 * node].end(),
             tree_[2 * node + 1].begin(), tree_[2 * node + 1].end(),
             merged.begin());
}

std::size_t MergeSortTree::count_x_above(double t) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), t);
  return static_cast<std::size_t>(xs_.end() - it);
}

std::size_t MergeSortTree::count(double x_above, double y_at_most) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x_above);
  const auto lo = static_cast<std::size_t>(it - xs_.begin());
  return count_rank_range(lo, xs_.size(), y_at_most);
}

std::size_t MergeSortTree::count_rank_range(std::size_t lo, std::size_t hi,
                                            double y_at_most) const {
  if (lo >= hi || xs_.empty()) return 0;
  hi = std::min(hi, xs_.size());
  return query(1, 0, xs_.size(), lo, hi, y_at_most);
}

std::size_t MergeSortTree::query(std::size_t node, std::size_t node_lo,
                                 std::size_t node_hi, std::size_t lo,
                                 std::size_t hi, double v) const {
  if (hi <= node_lo || node_hi <= lo) return 0;
  if (lo <= node_lo && node_hi <= hi) {
    const auto& ys = tree_[node];
    return static_cast<std::size_t>(
        std::upper_bound(ys.begin(), ys.end(), v) - ys.begin());
  }
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  return query(2 * node, node_lo, mid, lo, hi, v) +
         query(2 * node + 1, mid, node_hi, lo, hi, v);
}

}  // namespace reissue::stats
