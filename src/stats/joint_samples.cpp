#include "reissue/stats/joint_samples.hpp"

#include <stdexcept>

namespace reissue::stats {

JointSamples::JointSamples(std::vector<std::pair<double, double>> pairs)
    : n_(pairs.size()) {
  if (pairs.empty()) {
    throw std::invalid_argument("JointSamples requires at least one pair");
  }
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(n_);
  ys.reserve(n_);
  for (const auto& [x, y] : pairs) {
    xs.push_back(x);
    ys.push_back(y);
  }
  x_ = EmpiricalCdf(std::move(xs));
  y_ = EmpiricalCdf(std::move(ys));
  tree_ = MergeSortTree(std::move(pairs));
}

double JointSamples::conditional_y_cdf(double v, double x_above,
                                       double fallback) const {
  const std::size_t denom = tree_.count_x_above(x_above);
  if (denom == 0) return fallback;
  const std::size_t num = tree_.count(x_above, v);
  return static_cast<double>(num) / static_cast<double>(denom);
}

double JointSamples::joint_prob(double x_above, double y_at_most) const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(tree_.count(x_above, y_at_most)) /
         static_cast<double>(n_);
}

}  // namespace reissue::stats
