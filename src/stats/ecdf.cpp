#include "reissue/stats/ecdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace reissue::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalCdf requires at least one sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
  finish_moments();
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : EmpiricalCdf(std::vector<double>(samples.begin(), samples.end())) {}

EmpiricalCdf EmpiricalCdf::from_sorted(std::vector<double> sorted) {
  if (sorted.empty()) {
    throw std::invalid_argument("EmpiricalCdf requires at least one sample");
  }
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  EmpiricalCdf cdf;
  cdf.sorted_ = std::move(sorted);
  cdf.finish_moments();
  return cdf;
}

void EmpiricalCdf::finish_moments() {
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  mean_ = sum / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (double v : sorted_) ss += (v - mean_) * (v - mean_);
  stddev_ = std::sqrt(ss / static_cast<double>(sorted_.size()));
}

double EmpiricalCdf::cdf_strict(double t) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::cdf(double t) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), t);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("quantile p must be in [0,1]");
  }
  if (p == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p * n));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

double EmpiricalCdf::min() const {
  if (sorted_.empty()) throw std::logic_error("empty ECDF");
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  if (sorted_.empty()) throw std::logic_error("empty ECDF");
  return sorted_.back();
}

}  // namespace reissue::stats
