#include "reissue/stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace reissue::stats {

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double pearson(const std::vector<std::pair<double, double>>& pairs) {
  if (pairs.size() < 2) {
    throw std::invalid_argument("pearson requires >= 2 pairs");
  }
  const auto n = static_cast<double>(pairs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (const auto& [x, y] : pairs) {
    sx += x;
    sy += y;
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const auto& [x, y] : pairs) {
    sxy += (x - mx) * (y - my);
    sxx += (x - mx) * (x - mx);
    syy += (y - my) * (y - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw std::invalid_argument("pearson: zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

double spearman(const std::vector<std::pair<double, double>>& pairs) {
  if (pairs.size() < 2) {
    throw std::invalid_argument("spearman requires >= 2 pairs");
  }
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(pairs.size());
  ys.reserve(pairs.size());
  for (const auto& [x, y] : pairs) {
    xs.push_back(x);
    ys.push_back(y);
  }
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  std::vector<std::pair<double, double>> ranked(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) ranked[i] = {rx[i], ry[i]};
  return pearson(ranked);
}

}  // namespace reissue::stats
