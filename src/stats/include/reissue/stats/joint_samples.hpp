// Joint (primary, reissue) response-time samples with conditional-CDF
// queries, backing the correlation-aware optimizer of paper §4.2.
//
// Pr(Y <= v | X > t) is estimated as
//     |{(x,y) : x > t, y <= v}| / |{(x,y) : x > t}|
// over the logged pairs, in O(log^2 n) per query via a merge-sort tree.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "reissue/stats/ecdf.hpp"
#include "reissue/stats/merge_sort_tree.hpp"

namespace reissue::stats {

class JointSamples {
 public:
  JointSamples() = default;

  /// Builds from paired observations; throws std::invalid_argument if empty.
  explicit JointSamples(std::vector<std::pair<double, double>> pairs);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Marginal ECDF of the primary response time X.
  [[nodiscard]] const EmpiricalCdf& x_marginal() const noexcept { return x_; }

  /// Marginal ECDF of the reissue response time Y.
  [[nodiscard]] const EmpiricalCdf& y_marginal() const noexcept { return y_; }

  /// Pr(Y <= v | X > t).  Returns `fallback` when no sample has x > t
  /// (the conditioning event is empty).
  [[nodiscard]] double conditional_y_cdf(double v, double x_above,
                                         double fallback = 0.0) const;

  /// Joint tail-and-head count used by the remediation-rate metric:
  /// Pr(X > t AND Y <= v).
  [[nodiscard]] double joint_prob(double x_above, double y_at_most) const;

 private:
  std::size_t n_ = 0;
  EmpiricalCdf x_;
  EmpiricalCdf y_;
  MergeSortTree tree_;
};

}  // namespace reissue::stats
