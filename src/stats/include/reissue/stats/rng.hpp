// Deterministic, splittable pseudo-random number generation.
//
// All stochastic behaviour in this library flows through Xoshiro256++
// streams seeded via SplitMix64.  Experiments take a single 64-bit seed and
// derive one independent stream per component (arrival process, service
// model, policy coin flips, ...), so results are bit-reproducible and
// independent of thread scheduling when sweeps run in parallel.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

namespace reissue::stats {

/// SplitMix64: used to expand a user seed into Xoshiro state and to derive
/// child stream seeds.  (Public-domain algorithm by Sebastiano Vigna.)
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as input to log() in inverse CDFs.
  constexpr double uniform_pos() noexcept {
    return 1.0 - uniform();
  }

  /// Bulk uniform draws: out[i] = uniform(), in order — bit-identical to
  /// calling uniform() out.size() times.  The generator recurrence is
  /// inherently serial, but hoisting the draws out of a consumer loop frees
  /// the caller's transform (pow/log/...) from the per-draw dependency
  /// chain so consecutive libm calls can pipeline.
  constexpr void fill_uniform(std::span<double> out) noexcept {
    for (double& v : out) v = uniform();
  }

  /// Bulk draws in (0, 1] — bit-identical to repeated uniform_pos(); safe
  /// as input to log() in batched inverse CDFs.
  constexpr void fill_uniform_pos(std::span<double> out) noexcept {
    for (double& v : out) v = uniform_pos();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream.  Children with distinct labels (or
  /// from successive calls) are statistically independent for practical
  /// purposes; derivation is deterministic in (parent seed, label, call#).
  constexpr Xoshiro256 split(std::uint64_t label) noexcept {
    SplitMix64 sm(((*this)() ^ 0x9e3779b97f4a7c15ull) + label * 0xd1342543de82ef95ull);
    return Xoshiro256(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Stable 64-bit hash of a string label, for naming derived streams.
constexpr std::uint64_t stream_label(std::string_view name) noexcept {
  // FNV-1a.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace reissue::stats
