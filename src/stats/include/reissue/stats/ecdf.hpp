// Empirical CDF over a response-time log, with the exact `DiscreteCDF`
// semantics of the paper's Figure 1 pseudocode:
//
//     DiscreteCDF(R, t) = |{x in R : x < t}| / |R|        (strict)
//
// plus the conventional Pr(X <= t) variant and empirical quantiles.  The
// policy optimizer iterates over the sorted sample values, so the sorted
// vector is exposed read-only.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace reissue::stats {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds the ECDF by sorting `samples` in place (move in to avoid the
  /// copy).  Throws std::invalid_argument on an empty input.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Builds the ECDF from a borrowed sample view (copies, then sorts); the
  /// path for callers that must keep their log intact, e.g.
  /// RunResult::primary_cdf.
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Adopts an already-ascending vector without re-sorting (asserted in
  /// debug builds).  Throws std::invalid_argument on an empty input.
  [[nodiscard]] static EmpiricalCdf from_sorted(std::vector<double> sorted);

  /// Number of samples.
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// Paper's DiscreteCDF: fraction of samples strictly below t.
  [[nodiscard]] double cdf_strict(double t) const;

  /// Conventional ECDF: fraction of samples <= t.
  [[nodiscard]] double cdf(double t) const;

  /// Pr(X > t) = 1 - cdf(t).
  [[nodiscard]] double tail(double t) const { return 1.0 - cdf(t); }

  /// Pr(X >= t) = 1 - cdf_strict(t).
  [[nodiscard]] double tail_inclusive(double t) const {
    return 1.0 - cdf_strict(t);
  }

  /// Empirical p-quantile (nearest-rank: smallest sample s.t. at least
  /// ceil(p*n) samples are <= it), p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

  /// Sorted sample values (ascending).
  [[nodiscard]] std::span<const double> sorted() const noexcept {
    return sorted_;
  }

 private:
  void finish_moments();

  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

}  // namespace reissue::stats
