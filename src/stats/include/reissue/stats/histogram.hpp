// Fixed-width binned histogram, used to regenerate the service-time
// histograms of paper Figure 9 (20 ms bins, log-scale counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reissue::stats {

class Histogram {
 public:
  /// Bins [lo, lo+width), [lo+width, lo+2*width), ... `bins` of them.
  /// Values below lo land in the underflow bucket, values >= lo+bins*width
  /// in the overflow bucket.
  Histogram(double lo, double width, std::size_t bins);

  void add(double value);
  void add_n(double value, std::uint64_t n);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Midpoint of bin i (the x-coordinate plotted in Figure 9).
  [[nodiscard]] double bin_mid(std::size_t i) const;

  /// Renders "mid count" rows, skipping empty bins, as printed by the
  /// fig9 bench harness.
  [[nodiscard]] std::string to_table(const std::string& label) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace reissue::stats
