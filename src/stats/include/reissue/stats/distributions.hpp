// Service-time / response-time distributions used throughout the paper's
// evaluation: Pareto(shape 1.1, mode 2.0) for the §5.1 workloads,
// LogNormal(1,1) and Exponential(0.1) for the §5.4 sensitivity study, plus
// Weibull, Uniform, Constant, Shifted and Empirical for tests and extensions.
//
// Every distribution exposes an analytic cdf/quantile pair and samples by
// inverse-CDF transform from a caller-supplied Xoshiro stream, so all draws
// are deterministic given the stream state.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {

/// Interface for a univariate distribution over non-negative reals.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one variate using the supplied RNG stream.
  [[nodiscard]] virtual double sample(Xoshiro256& rng) const = 0;

  /// Draw out.size() variates, bit-identical draw-for-draw to calling
  /// sample() in a loop (same RNG consumption, same libm calls).  The
  /// default is that loop; the closed-form inverse-CDF families override
  /// it with a bulk uniform fill (Xoshiro256::fill_uniform_pos) followed by
  /// a tight transform loop, which frees the expensive pow/log calls from
  /// the per-draw RNG dependency chain so they pipeline across elements.
  virtual void sample_batch(std::span<double> out, Xoshiro256& rng) const;

  /// Pr(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Inverse CDF: smallest x with cdf(x) >= p, for p in [0, 1).
  [[nodiscard]] virtual double quantile(double p) const = 0;

  /// E[X].  May be +inf (e.g. Pareto with shape <= 1).
  [[nodiscard]] virtual double mean() const = 0;

  /// Human-readable name, e.g. "Pareto(1.1,2)".
  [[nodiscard]] virtual std::string name() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Pareto (Type I): cdf(x) = 1 - (mode/x)^shape for x >= mode.
/// The paper's default service-time model uses shape 1.1, mode 2.0.
class Pareto final : public Distribution {
 public:
  Pareto(double shape, double mode);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double mode() const noexcept { return mode_; }

 private:
  double shape_;
  double mode_;
};

/// LogNormal(mu, sigma): log X ~ Normal(mu, sigma^2).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

/// Exponential(rate): cdf(x) = 1 - exp(-rate * x).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape, scale): cdf(x) = 1 - exp(-(x/scale)^shape).
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double shape_;
  double scale_;
};

/// Uniform(lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double lo_;
  double hi_;
};

/// Degenerate distribution: always `value`.
class Constant final : public Distribution {
 public:
  explicit Constant(double value);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double value_;
};

/// `base` truncated at `cap`: X = min(B, cap).  Heavy-tailed service
/// models (Pareto shape 1.1 has infinite variance) occasionally draw
/// single requests longer than an entire experiment, which no real
/// benchmark run survives unremarked; capping at a high quantile keeps
/// the tail heavy while bounding catastrophes.  cdf(x) = F_B(x) for
/// x < cap and 1 at x >= cap (an atom at the cap).
class Truncated final : public Distribution {
 public:
  Truncated(DistributionPtr base, double cap);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double cap() const noexcept { return cap_; }

 private:
  DistributionPtr base_;
  double cap_;
  double mean_;
};

/// `base` shifted right by `offset` (>= 0): X = offset + B.
class Shifted final : public Distribution {
 public:
  Shifted(DistributionPtr base, double offset);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  DistributionPtr base_;
  double offset_;
};

/// Resampling distribution over an observed trace: sampling draws a uniform
/// element; cdf/quantile are the empirical ones.  Used to replay measured
/// service-time logs from the Redis-like / Lucene-like engines.
class EmpiricalSampler final : public Distribution {
 public:
  explicit EmpiricalSampler(std::vector<double> samples);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  void sample_batch(std::span<double> out, Xoshiro256& rng) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
  double mean_;
};

/// Standard normal CDF / inverse CDF (Acklam's rational approximation,
/// refined by one Halley step; |error| < 1e-9 over (0,1)).
[[nodiscard]] double normal_cdf(double x);
[[nodiscard]] double normal_quantile(double p);

// Convenience factories.
[[nodiscard]] DistributionPtr make_pareto(double shape, double mode);
[[nodiscard]] DistributionPtr make_lognormal(double mu, double sigma);
[[nodiscard]] DistributionPtr make_exponential(double rate);
[[nodiscard]] DistributionPtr make_weibull(double shape, double scale);
[[nodiscard]] DistributionPtr make_uniform(double lo, double hi);
[[nodiscard]] DistributionPtr make_constant(double value);
[[nodiscard]] DistributionPtr make_shifted(DistributionPtr base, double offset);
[[nodiscard]] DistributionPtr make_truncated(DistributionPtr base, double cap);
[[nodiscard]] DistributionPtr make_empirical(std::vector<double> samples);

}  // namespace reissue::stats
