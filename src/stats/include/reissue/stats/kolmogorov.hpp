// Kolmogorov-Smirnov distances, used by the test suite to verify that the
// inverse-CDF samplers actually produce their claimed distributions.
#pragma once

#include <functional>
#include <vector>

namespace reissue::stats {

/// One-sample KS statistic: sup_x |ECDF(x) - F(x)| over the sample points.
/// `samples` need not be sorted.
[[nodiscard]] double ks_distance(std::vector<double> samples,
                                 const std::function<double(double)>& cdf);

/// Two-sample KS statistic between two sample sets.
[[nodiscard]] double ks_distance_two_sample(std::vector<double> a,
                                            std::vector<double> b);

}  // namespace reissue::stats
