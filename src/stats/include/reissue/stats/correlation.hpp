// Pearson and Spearman correlation over paired samples, used to validate
// the Correlated workload generator (paper §5.1, Y = r·x + Z) and to
// report the joint-structure statistics behind Figure 4.
#pragma once

#include <utility>
#include <vector>

namespace reissue::stats {

/// Pearson linear correlation coefficient.  Throws on < 2 pairs or zero
/// variance in either coordinate.
[[nodiscard]] double pearson(const std::vector<std::pair<double, double>>& pairs);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(const std::vector<std::pair<double, double>>& pairs);

}  // namespace reissue::stats
