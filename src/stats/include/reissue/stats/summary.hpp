// Streaming summary statistics (Welford) and batch percentile helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace reissue::stats {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm);
/// numerically stable, mergeable for parallel reductions.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction step).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A two-sided confidence interval around a sample mean.
struct MeanInterval {
  double mean = 0.0;
  /// Half-width of the interval; lo()/hi() are mean -/+ half_width.
  double half_width = 0.0;

  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
};

/// 95% Student-t confidence interval for the mean of the accumulated
/// sample (t on n-1 degrees of freedom, normal critical value for n > 30).
/// Degenerate by convention: n <= 1 yields half_width 0.
[[nodiscard]] MeanInterval mean_ci95(const RunningStats& stats);

/// Nearest-rank percentile of an unsorted sample (copies + sorts).
/// p in [0, 100].  Throws on empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Nearest-rank percentile of an already-sorted (ascending) sample.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double p);

}  // namespace reissue::stats
