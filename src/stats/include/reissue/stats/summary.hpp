// Streaming summary statistics (Welford) and batch percentile helpers.
#pragma once

#include <cstddef>
#include <vector>

namespace reissue::stats {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm);
/// numerically stable, mergeable for parallel reductions.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction step).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Nearest-rank percentile of an unsorted sample (copies + sorts).
/// p in [0, 100].  Throws on empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Nearest-rank percentile of an already-sorted (ascending) sample.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double p);

}  // namespace reissue::stats
