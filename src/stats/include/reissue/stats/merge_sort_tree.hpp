// Static merge-sort tree for 2-D orthogonal dominance counting.
//
// The correlation-aware policy optimizer (paper §4.2) needs the conditional
// distribution Pr(Y <= v | X > t) over observed (x, y) response-time pairs,
// i.e. counts of points with x in a suffix of the x-order and y <= v.  The
// paper suggests a 2-D orthogonal range query structure [1, 22]; we use a
// merge-sort tree: a segment tree over the x-sorted points where each node
// stores its points' y-values in sorted order.  Queries cost O(log^2 n),
// construction O(n log n) time / O(n log n) space.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace reissue::stats {

class MergeSortTree {
 public:
  MergeSortTree() = default;

  /// Builds the tree over `points`; the x-coordinates are sorted internally.
  explicit MergeSortTree(std::vector<std::pair<double, double>> points);

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

  /// Number of points with x > t (strict).
  [[nodiscard]] std::size_t count_x_above(double t) const;

  /// Number of points with x > t and y <= v.
  [[nodiscard]] std::size_t count(double x_above, double y_at_most) const;

  /// Number of points with x-rank in [lo, hi) and y <= v.  Exposed for
  /// tests and for callers that already know the rank range.
  [[nodiscard]] std::size_t count_rank_range(std::size_t lo, std::size_t hi,
                                             double y_at_most) const;

 private:
  void build(std::size_t node, std::size_t lo, std::size_t hi,
             const std::vector<double>& ys);
  [[nodiscard]] std::size_t query(std::size_t node, std::size_t node_lo,
                                  std::size_t node_hi, std::size_t lo,
                                  std::size_t hi, double v) const;

  std::vector<double> xs_;                 // sorted x values
  std::vector<std::vector<double>> tree_;  // sorted y values per segment node
};

}  // namespace reissue::stats
