// P-square (P²) streaming quantile estimator (Jain & Chlamtac, 1985).
//
// Used by the online/adaptive extensions to track tail percentiles of a
// live response-time stream in O(1) space, without storing the log.  The
// batch experiments use exact sorted percentiles; this sketch exists for
// the long-running middleware path where logs would grow unbounded.
#pragma once

#include <array>
#include <cstddef>

namespace reissue::stats {

class PSquareQuantile {
 public:
  /// Tracks the p-quantile, p in (0, 1).
  explicit PSquareQuantile(double p);

  void add(double x);

  /// Current estimate.  Before 5 observations arrive, returns the exact
  /// sample quantile of what has been seen (or 0 when empty).
  [[nodiscard]] double estimate() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  void insert_initial(double x);
  void adjust();
  [[nodiscard]] double parabolic(int i, double sign) const;
  [[nodiscard]] double linear(int i, double sign) const;

  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights q_i
  std::array<double, 5> positions_{}; // actual positions n_i
  std::array<double, 5> desired_{};   // desired positions n'_i
  std::array<double, 5> increments_{};
};

}  // namespace reissue::stats
