// Fenwick (binary indexed) tree over a fixed-size array of counts.
// Used for offline 2-D dominance counting and as a reference structure in
// tests for the merge-sort tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace reissue::stats {

template <typename T = std::int64_t>
class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t n) : tree_(n + 1, T{}) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return tree_.empty() ? 0 : tree_.size() - 1;
  }

  /// Adds `delta` at 0-based index i.
  void add(std::size_t i, T delta) {
    if (i >= size()) throw std::out_of_range("FenwickTree::add index");
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of elements with index < i (prefix sum of the first i items).
  [[nodiscard]] T prefix(std::size_t i) const {
    if (i > size()) i = size();
    T s{};
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  /// Sum over the half-open index range [lo, hi).
  [[nodiscard]] T range(std::size_t lo, std::size_t hi) const {
    if (lo >= hi) return T{};
    return prefix(hi) - prefix(lo);
  }

  /// Total of all elements.
  [[nodiscard]] T total() const { return prefix(size()); }

 private:
  std::vector<T> tree_;
};

}  // namespace reissue::stats
