// Streaming tail summary: everything the experiment engine reports about a
// latency stream, in O(1) memory per sample.
//
// Combines running sum/min/max moments, the P² sketch of the tracked
// percentile, and a log-bucketed histogram quantile estimator in the style
// of DDSketch (Masson et al., VLDB'19): bucket i covers
// (gamma^(i-1), gamma^i], so any quantile is recovered with bounded
// relative error (gamma - 1, default 0.1%).  This is the accumulator
// behind core::LogMode::kStreaming sweeps, where 10^6-query runs would
// otherwise materialize and sort multi-megabyte logs per replication.
//
// Deterministic: the summary is a pure function of the added sequence, so
// streaming sweeps stay bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "reissue/stats/psquare.hpp"

namespace reissue::stats {

class TailSummary {
 public:
  /// Tracks the p-quantile (p in (0,1)) of the stream; `relative_error`
  /// bounds the histogram quantile error (must be in (0, 0.5]).
  explicit TailSummary(double percentile, double relative_error = 1e-3);

  void add(double x);

  /// Histogram estimate of the tracked percentile (upper bucket edge:
  /// overestimates by at most the relative error).  0 when empty.
  [[nodiscard]] double quantile() const { return quantile(percentile_); }

  /// Histogram estimate of an arbitrary p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// P² streaming estimate of the tracked percentile.
  [[nodiscard]] double psquare() const { return sketch_.estimate(); }

  [[nodiscard]] double percentile() const noexcept { return percentile_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  /// Bucket index of a positive value: ceil(log_gamma(x)), computed from
  /// the double's exponent bits plus a table-interpolated log2 of the
  /// mantissa (no libm call on the hot path; interpolation error < 1e-5 in
  /// log2, absorbed into the advertised relative error).
  [[nodiscard]] std::int64_t bucket_index(double x) const;

  double percentile_;
  double gamma_;
  double log2_gamma_inv_;
  /// Plain sum/min/max accumulators: a Welford pass would pay a division
  /// per sample for variance this type does not report.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  PSquareQuantile sketch_;
  /// counts_[i] holds values in (gamma^(base_+i-1), gamma^(base_+i)].
  std::vector<std::uint64_t> counts_;
  std::int64_t base_ = 0;
  /// Values <= 0 (zero-latency degenerate observations).
  std::uint64_t non_positive_ = 0;
};

}  // namespace reissue::stats
