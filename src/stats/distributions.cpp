#include "reissue/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace reissue::stats {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

// ------------------------------------------------------------ base class

void Distribution::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  for (double& v : out) v = sample(rng);
}

// ---------------------------------------------------------------- Pareto

Pareto::Pareto(double shape, double mode) : shape_(shape), mode_(mode) {
  require(shape > 0.0, "Pareto shape must be > 0");
  require(mode > 0.0, "Pareto mode must be > 0");
}

double Pareto::sample(Xoshiro256& rng) const {
  // Inverse CDF on u in (0,1]: x = mode * u^{-1/shape}.
  return mode_ * std::pow(rng.uniform_pos(), -1.0 / shape_);
}

void Pareto::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  rng.fill_uniform_pos(out);
  const double exponent = -1.0 / shape_;
  for (double& v : out) v = mode_ * std::pow(v, exponent);
}

double Pareto::cdf(double x) const {
  if (x < mode_) return 0.0;
  return 1.0 - std::pow(mode_ / x, shape_);
}

double Pareto::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return mode_ * std::pow(1.0 - p, -1.0 / shape_);
}

double Pareto::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * mode_ / (shape_ - 1.0);
}

std::string Pareto::name() const {
  return "Pareto(" + std::to_string(shape_) + "," + std::to_string(mode_) + ")";
}

// ------------------------------------------------------------- LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "LogNormal sigma must be > 0");
}

double LogNormal::sample(Xoshiro256& rng) const {
  return std::exp(mu_ + sigma_ * normal_quantile(rng.uniform_pos()));
}

void LogNormal::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  rng.fill_uniform_pos(out);
  for (double& v : out) v = std::exp(mu_ + sigma_ * normal_quantile(v));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  if (p == 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

std::string LogNormal::name() const {
  return "LogNormal(" + std::to_string(mu_) + "," + std::to_string(sigma_) + ")";
}

// ----------------------------------------------------------- Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0, "Exponential rate must be > 0");
}

double Exponential::sample(Xoshiro256& rng) const {
  return -std::log(rng.uniform_pos()) / rate_;
}

void Exponential::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  rng.fill_uniform_pos(out);
  for (double& v : out) v = -std::log(v) / rate_;
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return -std::log(1.0 - p) / rate_;
}

double Exponential::mean() const { return 1.0 / rate_; }

std::string Exponential::name() const {
  return "Exp(" + std::to_string(rate_) + ")";
}

// --------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0, "Weibull shape must be > 0");
  require(scale > 0.0, "Weibull scale must be > 0");
}

double Weibull::sample(Xoshiro256& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

void Weibull::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  rng.fill_uniform_pos(out);
  const double exponent = 1.0 / shape_;
  for (double& v : out) v = scale_ * std::pow(-std::log(v), exponent);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

std::string Weibull::name() const {
  return "Weibull(" + std::to_string(shape_) + "," + std::to_string(scale_) + ")";
}

// --------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(hi > lo, "Uniform requires hi > lo");
}

double Uniform::sample(Xoshiro256& rng) const {
  return lo_ + (hi_ - lo_) * rng.uniform();
}

void Uniform::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  rng.fill_uniform(out);
  for (double& v : out) v = lo_ + (hi_ - lo_) * v;
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return lo_ + (hi_ - lo_) * p;
}

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }

std::string Uniform::name() const {
  return "Uniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

// -------------------------------------------------------------- Constant

Constant::Constant(double value) : value_(value) {
  require(value >= 0.0, "Constant value must be >= 0");
}

double Constant::sample(Xoshiro256&) const { return value_; }

void Constant::sample_batch(std::span<double> out, Xoshiro256&) const {
  // sample() consumes no RNG, so neither may the batch.
  for (double& v : out) v = value_;
}

double Constant::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double Constant::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return value_;
}

double Constant::mean() const { return value_; }

std::string Constant::name() const {
  return "Constant(" + std::to_string(value_) + ")";
}

// ------------------------------------------------------------- Truncated

Truncated::Truncated(DistributionPtr base, double cap)
    : base_(std::move(base)), cap_(cap) {
  require(base_ != nullptr, "Truncated requires a base distribution");
  require(cap > 0.0, "Truncated cap must be > 0");
  // E[min(B, cap)] = cap - integral_0^cap F(x) dx, via Simpson on a fine
  // grid (the base mean may be infinite, e.g. Pareto shape <= 1).
  constexpr int kSteps = 4096;
  const double h = cap_ / kSteps;
  double integral = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double w = (i == 0 || i == kSteps) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    integral += w * base_->cdf(static_cast<double>(i) * h);
  }
  integral *= h / 3.0;
  mean_ = cap_ - integral;
}

double Truncated::sample(Xoshiro256& rng) const {
  return std::min(base_->sample(rng), cap_);
}

void Truncated::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  base_->sample_batch(out, rng);
  for (double& v : out) v = std::min(v, cap_);
}

double Truncated::cdf(double x) const {
  if (x >= cap_) return 1.0;
  return base_->cdf(x);
}

double Truncated::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  return std::min(base_->quantile(p), cap_);
}

double Truncated::mean() const { return mean_; }

std::string Truncated::name() const {
  return "Truncated(" + base_->name() + ",cap=" + std::to_string(cap_) + ")";
}

// --------------------------------------------------------------- Shifted

Shifted::Shifted(DistributionPtr base, double offset)
    : base_(std::move(base)), offset_(offset) {
  require(base_ != nullptr, "Shifted requires a base distribution");
  require(offset >= 0.0, "Shifted offset must be >= 0");
}

double Shifted::sample(Xoshiro256& rng) const {
  return offset_ + base_->sample(rng);
}

void Shifted::sample_batch(std::span<double> out, Xoshiro256& rng) const {
  base_->sample_batch(out, rng);
  for (double& v : out) v = offset_ + v;
}

double Shifted::cdf(double x) const { return base_->cdf(x - offset_); }

double Shifted::quantile(double p) const { return offset_ + base_->quantile(p); }

double Shifted::mean() const { return offset_ + base_->mean(); }

std::string Shifted::name() const {
  return "Shifted(" + base_->name() + ",+" + std::to_string(offset_) + ")";
}

// ------------------------------------------------------ EmpiricalSampler

EmpiricalSampler::EmpiricalSampler(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  require(!sorted_.empty(), "EmpiricalSampler requires at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

double EmpiricalSampler::sample(Xoshiro256& rng) const {
  return sorted_[rng.below(sorted_.size())];
}

void EmpiricalSampler::sample_batch(std::span<double> out,
                                    Xoshiro256& rng) const {
  // No libm in this path; batching only hoists the virtual dispatch.  The
  // rejection loop inside below() keeps the per-draw RNG consumption
  // identical to sample().
  const std::size_t n = sorted_.size();
  for (double& v : out) v = sorted_[rng.below(n)];
}

double EmpiricalSampler::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalSampler::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "quantile p must be in [0,1)");
  // Smallest x with cdf(x) >= p is sorted_[ceil(p*n) - 1]: cdf(sorted_[k])
  // >= (k+1)/n, with equality only when sorted_[k] ends a tie run.  At
  // exact lattice points p = k/n the k-th sample already satisfies the
  // bound, so flooring (the previous implementation) overshot by one.
  std::size_t idx = 0;
  if (p > 0.0) {
    const double scaled = p * static_cast<double>(sorted_.size());
    idx = static_cast<std::size_t>(std::ceil(scaled)) - 1;
  }
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double EmpiricalSampler::mean() const { return mean_; }

std::string EmpiricalSampler::name() const {
  return "Empirical(n=" + std::to_string(sorted_.size()) + ")";
}

// ------------------------------------------------------- normal cdf/qtl

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile p must be in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the analytic normal pdf/cdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

// ------------------------------------------------------------- factories

DistributionPtr make_pareto(double shape, double mode) {
  return std::make_shared<Pareto>(shape, mode);
}
DistributionPtr make_lognormal(double mu, double sigma) {
  return std::make_shared<LogNormal>(mu, sigma);
}
DistributionPtr make_exponential(double rate) {
  return std::make_shared<Exponential>(rate);
}
DistributionPtr make_weibull(double shape, double scale) {
  return std::make_shared<Weibull>(shape, scale);
}
DistributionPtr make_uniform(double lo, double hi) {
  return std::make_shared<Uniform>(lo, hi);
}
DistributionPtr make_constant(double value) {
  return std::make_shared<Constant>(value);
}
DistributionPtr make_shifted(DistributionPtr base, double offset) {
  return std::make_shared<Shifted>(std::move(base), offset);
}
DistributionPtr make_truncated(DistributionPtr base, double cap) {
  return std::make_shared<Truncated>(std::move(base), cap);
}
DistributionPtr make_empirical(std::vector<double> samples) {
  return std::make_shared<EmpiricalSampler>(std::move(samples));
}

}  // namespace reissue::stats
