#include "reissue/stats/psquare.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reissue::stats {

PSquareQuantile::PSquareQuantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("PSquareQuantile p must be in (0,1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
  increments_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void PSquareQuantile::add(double x) {
  if (count_ < 5) {
    insert_initial(x);
    return;
  }
  // Locate cell k such that heights_[k] <= x < heights_[k+1].
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  adjust();
  ++count_;
}

void PSquareQuantile::insert_initial(double x) {
  heights_[count_] = x;
  ++count_;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
    for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
  }
}

void PSquareQuantile::adjust() {
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_up = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_down = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_up && !move_down) continue;
    const double sign = move_up ? 1.0 : -1.0;
    double candidate = parabolic(i, sign);
    if (!(heights_[i - 1] < candidate && candidate < heights_[i + 1])) {
      candidate = linear(i, sign);
    }
    heights_[i] = candidate;
    positions_[i] += sign;
  }
}

double PSquareQuantile::parabolic(int i, double sign) const {
  const double np = positions_[i + 1];
  const double nm = positions_[i - 1];
  const double n = positions_[i];
  const double qp = heights_[i + 1];
  const double qm = heights_[i - 1];
  const double q = heights_[i];
  return q + sign / (np - nm) *
                 ((n - nm + sign) * (qp - q) / (np - n) +
                  (np - n - sign) * (q - qm) / (n - nm));
}

double PSquareQuantile::linear(int i, double sign) const {
  const int j = i + static_cast<int>(sign);
  return heights_[i] + sign * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double PSquareQuantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        std::ceil(p_ * static_cast<double>(count_)));
    return tmp[std::min(std::max<std::size_t>(rank, 1), count_) - 1];
  }
  return heights_[2];
}

}  // namespace reissue::stats
