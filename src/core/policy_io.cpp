#include "reissue/core/policy_io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace reissue::core {

void write_latency_log(std::ostream& os, const std::vector<double>& samples) {
  os << std::setprecision(17);
  for (double v : samples) os << v << "\n";
}

std::vector<double> read_latency_log(std::istream& is) {
  std::vector<double> samples;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim whitespace.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &consumed);
    } catch (const std::exception&) {
      throw std::runtime_error("latency log line " + std::to_string(lineno) +
                               ": not a number: '" + token + "'");
    }
    if (consumed != token.size()) {
      throw std::runtime_error("latency log line " + std::to_string(lineno) +
                               ": trailing garbage: '" + token + "'");
    }
    if (value < 0.0) {
      throw std::runtime_error("latency log line " + std::to_string(lineno) +
                               ": negative latency");
    }
    samples.push_back(value);
  }
  return samples;
}

std::string policy_to_line(const ReissuePolicy& policy) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << to_string(policy.family());
  for (const auto& stage : policy.stages()) {
    os << " d=" << stage.delay << " q=" << stage.probability;
  }
  return os.str();
}

namespace {

/// Number in a "d=..." / "q=..." token; diagnostics name the token rather
/// than surfacing std::stod's unhelpful what() ("stod").
double stage_number(const std::string& token) {
  const std::string digits = token.substr(2);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(digits, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error("policy line: bad number in '" + token + "'");
  }
  if (consumed != digits.size()) {
    throw std::runtime_error("policy line: bad number in '" + token + "'");
  }
  return value;
}

}  // namespace

ReissuePolicy policy_from_line(const std::string& line) {
  std::istringstream is(line);
  std::string family;
  if (!(is >> family)) {
    throw std::runtime_error("policy line: missing family");
  }
  std::vector<ReissueStage> stages;
  std::string token;
  while (is >> token) {
    if (token.rfind("d=", 0) != 0) {
      throw std::runtime_error("policy line: expected d=..., got " + token);
    }
    ReissueStage stage;
    stage.delay = stage_number(token);
    if (!(is >> token) || token.rfind("q=", 0) != 0) {
      throw std::runtime_error("policy line: expected q=... after d=...");
    }
    stage.probability = stage_number(token);
    stages.push_back(stage);
  }

  if (family == "NoReissue") {
    if (!stages.empty()) {
      throw std::runtime_error("policy line: NoReissue takes no stages");
    }
    return ReissuePolicy::none();
  }
  if (family == "Immediate") {
    return ReissuePolicy::immediate(stages.size());
  }
  if (family == "SingleD") {
    if (stages.size() != 1 || stages[0].probability != 1.0) {
      throw std::runtime_error("policy line: SingleD needs one stage, q=1");
    }
    return ReissuePolicy::single_d(stages[0].delay);
  }
  if (family == "SingleR") {
    if (stages.size() != 1) {
      throw std::runtime_error("policy line: SingleR needs exactly one stage");
    }
    return ReissuePolicy::single_r(stages[0].delay, stages[0].probability);
  }
  if (family == "MultipleR") {
    if (stages.empty()) {
      throw std::runtime_error("policy line: MultipleR needs >= 1 stage");
    }
    return ReissuePolicy::multiple_r(std::move(stages));
  }
  throw std::runtime_error("policy line: unknown family " + family);
}

}  // namespace reissue::core
