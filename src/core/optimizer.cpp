#include "reissue/core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "reissue/core/success_rate.hpp"

namespace reissue::core {

namespace {

void validate(double k, double budget) {
  if (!(k > 0.0 && k < 1.0)) {
    throw std::invalid_argument("optimizer: k must be in (0,1)");
  }
  if (!(budget >= 0.0)) {
    throw std::invalid_argument("optimizer: budget must be >= 0");
  }
}

double clamped_q(const stats::EmpiricalCdf& rx, double budget, double d) {
  const double tail = rx.tail(d);
  if (tail <= 0.0) return 1.0;
  return std::clamp(budget / tail, 0.0, 1.0);
}

/// Shared two-pointer scan of Figure 1, parameterized on the success-rate
/// evaluator so the independent and correlated variants use one search.
/// The budget is baked into the two closures.
OptimizerResult figure1_scan(
    const stats::EmpiricalCdf& rx, double k,
    const std::function<double(double t, double d)>& success_rate,
    const std::function<double(double d)>& q_of_d) {
  const auto xs = rx.sorted();
  const std::size_t n = xs.size();

  // Lines 2-3: trivial feasible policy -- reissue everything at min{RX},
  // which certainly achieves a tail latency of max{RX}.
  std::size_t d_idx = 0;
  std::size_t t_idx = n - 1;
  double d_star = xs.front();
  double t_star = xs.back();  // last *verified* feasible tail latency
  double t = xs[t_idx];

  // Lines 4-12.  Q = {xs[d_idx..t_idx]}; d consumes from the front, t from
  // the back.  For fixed d the success rate is nondecreasing in t, so once
  // alpha(t,d) <= k no smaller t can be feasible for this d and we advance d.
  while (d_idx <= t_idx) {
    const double d = xs[d_idx];
    double alpha = success_rate(t, d);
    while (alpha > k && t > d && t_idx > d_idx) {
      // (d, t) is verified feasible: record it, then try a smaller t.
      d_star = d;
      t_star = t;
      --t_idx;
      t = xs[t_idx];
      alpha = success_rate(t, d);
    }
    if (alpha > k && t >= d) {
      // Feasible at the boundary (t == d or Q about to empty); record.
      d_star = d;
      t_star = t;
    }
    ++d_idx;
  }

  OptimizerResult result;
  result.delay = d_star;
  // Paper line 13 reads q = 1 - DiscreteCDF(RX, d*) = Pr(X >= d*), which
  // ignores the budget; the text (Eq. 4, line 18) defines q = B/Pr(X>d).
  // We use the budget-consistent definition, clamped to [0,1].
  result.probability = q_of_d(d_star);
  result.predicted_tail_latency = t_star;
  result.predicted_success_rate = success_rate(t_star, d_star);
  return result;
}

OptimizerResult brute_scan(
    const stats::EmpiricalCdf& rx, double k,
    const std::function<double(double t, double d)>& success_rate,
    const std::function<double(double d)>& q_of_d) {
  const auto xs = rx.sorted();
  OptimizerResult best;
  best.delay = xs.front();
  best.probability = q_of_d(best.delay);
  best.predicted_tail_latency = xs.back();
  best.predicted_success_rate = success_rate(xs.back(), xs.front());
  for (double d : xs) {
    for (double t : xs) {
      if (t < d) continue;
      if (t >= best.predicted_tail_latency) continue;
      if (success_rate(t, d) > k) {
        best.delay = d;
        best.probability = q_of_d(d);
        best.predicted_tail_latency = t;
        best.predicted_success_rate = success_rate(t, d);
      }
    }
  }
  return best;
}

}  // namespace

OptimizerResult compute_optimal_single_r(const stats::EmpiricalCdf& rx,
                                         const stats::EmpiricalCdf& ry,
                                         double k, double budget) {
  validate(k, budget);
  if (rx.empty() || ry.empty()) {
    throw std::invalid_argument("optimizer: empty response-time log");
  }
  return figure1_scan(
      rx, k,
      [&](double t, double d) {
        return single_r_success_rate(rx, ry, budget, t, d);
      },
      [&](double d) { return clamped_q(rx, budget, d); });
}

OptimizerResult compute_optimal_single_r_brute(const stats::EmpiricalCdf& rx,
                                               const stats::EmpiricalCdf& ry,
                                               double k, double budget) {
  validate(k, budget);
  if (rx.empty() || ry.empty()) {
    throw std::invalid_argument("optimizer: empty response-time log");
  }
  return brute_scan(
      rx, k,
      [&](double t, double d) {
        return single_r_success_rate(rx, ry, budget, t, d);
      },
      [&](double d) { return clamped_q(rx, budget, d); });
}

OptimizerResult compute_optimal_single_r_correlated(
    const stats::EmpiricalCdf& rx, const stats::JointSamples& joint, double k,
    double budget) {
  validate(k, budget);
  if (rx.empty()) {
    throw std::invalid_argument("optimizer: empty response-time log");
  }
  return figure1_scan(
      rx, k,
      [&](double t, double d) {
        return single_r_success_rate_correlated(rx, joint, budget, t, d);
      },
      [&](double d) { return clamped_q(rx, budget, d); });
}

OptimizerResult compute_optimal_single_r_correlated_brute(
    const stats::EmpiricalCdf& rx, const stats::JointSamples& joint, double k,
    double budget) {
  validate(k, budget);
  if (rx.empty()) {
    throw std::invalid_argument("optimizer: empty response-time log");
  }
  return brute_scan(
      rx, k,
      [&](double t, double d) {
        return single_r_success_rate_correlated(rx, joint, budget, t, d);
      },
      [&](double d) { return clamped_q(rx, budget, d); });
}

ReissuePolicy single_d_for_budget(const stats::EmpiricalCdf& rx,
                                  double budget) {
  if (!(budget >= 0.0 && budget <= 1.0)) {
    throw std::invalid_argument("single_d_for_budget: budget in [0,1]");
  }
  if (budget == 0.0) return ReissuePolicy::none();
  // Pr(X > d) = B  <=>  d = (1-B) quantile.
  return ReissuePolicy::single_d(rx.quantile(1.0 - budget));
}

namespace {

std::span<const double> primary_slice(const RunResult& train,
                                      std::size_t limit) {
  std::span<const double> xs = train.primary_latencies;
  if (xs.empty()) {
    throw std::invalid_argument("optimizer: training run has no primary log");
  }
  if (limit > 0 && limit < xs.size()) xs = xs.first(limit);
  return xs;
}

/// Pairs arrive in query order; keeping round(pairs * kept/total) of them
/// matches a primary log sliced to its first `kept` queries.
std::size_t pairs_to_keep(std::size_t pairs, std::size_t kept,
                          std::size_t total) {
  if (total == 0 || kept >= total) return pairs;
  return std::min(pairs, (pairs * kept + total / 2) / total);
}

}  // namespace

OptimizerResult optimize_single_r_from_run(const RunResult& train, double k,
                                           double budget, bool correlated,
                                           std::size_t train_limit) {
  const std::span<const double> xs = primary_slice(train, train_limit);
  const stats::EmpiricalCdf rx(xs);
  const std::size_t keep = pairs_to_keep(train.correlated_pairs.size(),
                                         xs.size(),
                                         train.primary_latencies.size());
  if (correlated) {
    stats::JointSamples joint;
    if (keep > 0) {
      joint = stats::JointSamples(std::vector<std::pair<double, double>>(
          train.correlated_pairs.begin(), train.correlated_pairs.begin() + keep));
    } else {
      std::vector<std::pair<double, double>> self;
      self.reserve(xs.size());
      for (double x : xs) self.emplace_back(x, x);
      joint = stats::JointSamples(std::move(self));
    }
    return compute_optimal_single_r_correlated(rx, joint, k, budget);
  }
  if (keep > 0) {
    std::vector<double> ys;
    ys.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      ys.push_back(train.correlated_pairs[i].second);
    }
    return compute_optimal_single_r(rx, stats::EmpiricalCdf(std::move(ys)), k,
                                    budget);
  }
  return compute_optimal_single_r(rx, rx, k, budget);
}

ReissuePolicy optimal_single_d_from_run(const RunResult& train, double budget,
                                        std::size_t train_limit) {
  return single_d_for_budget(
      stats::EmpiricalCdf(primary_slice(train, train_limit)), budget);
}

}  // namespace reissue::core
