#include "reissue/core/success_rate.hpp"

#include <algorithm>
#include <cmath>

namespace reissue::core {

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// q = B / Pr(X > d), clamped into [0, 1].  When no primary sample exceeds
/// d the stage can never fire, so the spend is irrelevant; return 1.
double budget_probability(const stats::EmpiricalCdf& rx, double budget,
                          double d) {
  const double tail = rx.tail(d);
  if (tail <= 0.0) return 1.0;
  return clamp01(budget / tail);
}

}  // namespace

double single_r_success_rate(const stats::EmpiricalCdf& rx,
                             const stats::EmpiricalCdf& ry, double budget,
                             double t, double d) {
  // Paper Fig. 1 lines 15-19 (with q clamped).
  const double px_le_t = rx.cdf_strict(t);
  const double q = budget_probability(rx, budget, d);
  const double py = ry.cdf_strict(t - d);
  return px_le_t + q * (1.0 - px_le_t) * py;
}

double single_r_success_rate_correlated(const stats::EmpiricalCdf& rx,
                                        const stats::JointSamples& joint,
                                        double budget, double t, double d) {
  const double px_le_t = rx.cdf_strict(t);
  const double q = budget_probability(rx, budget, d);
  // Pr(Y <= t-d | X > t); when nothing conditions (X never exceeds t) the
  // term is multiplied by (1 - Pr(X<=t)) ~ 0 anyway, fallback 0 is safe.
  const double py = joint.conditional_y_cdf(t - d, t, /*fallback=*/0.0);
  return px_le_t + q * (1.0 - px_le_t) * py;
}

double policy_success_rate(const stats::EmpiricalCdf& rx,
                           const stats::EmpiricalCdf& ry,
                           const ReissuePolicy& policy, double t) {
  const double px_le_t = rx.cdf(t);
  // Probability that no copy issued so far has answered by time t, given
  // the primary misses t.  Stages are in delay order.
  double miss_all = 1.0;
  double success = px_le_t;
  for (const auto& stage : policy.stages()) {
    if (stage.delay >= t) break;  // a copy sent at d >= t cannot answer by t
    const double py = ry.cdf(t - stage.delay);
    success += stage.probability * miss_all * (1.0 - px_le_t) * py;
    miss_all *= (1.0 - stage.probability * py);
  }
  return clamp01(success);
}

double policy_budget(const stats::EmpiricalCdf& rx,
                     const stats::EmpiricalCdf& ry,
                     const ReissuePolicy& policy) {
  // Eq. (15) generalized: stage i fires iff the query is still outstanding
  // at d_i -- the primary exceeds d_i and no earlier issued copy answered
  // by d_i.
  double budget = 0.0;
  const auto stages = policy.stages();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    double p_outstanding = rx.tail(stages[i].delay);
    for (std::size_t j = 0; j < i; ++j) {
      const double py = ry.cdf(stages[i].delay - stages[j].delay);
      p_outstanding *= (1.0 - stages[j].probability * py);
    }
    budget += stages[i].probability * p_outstanding;
  }
  return budget;
}

double policy_tail_latency(const stats::EmpiricalCdf& rx,
                           const stats::EmpiricalCdf& ry,
                           const ReissuePolicy& policy, double k) {
  for (double t : rx.sorted()) {
    if (policy_success_rate(rx, ry, policy, t) >= k) return t;
  }
  return rx.max();
}

}  // namespace reissue::core
