#include "reissue/core/online.hpp"

#include <algorithm>
#include <stdexcept>

namespace reissue::core {

OnlineReissueController::OnlineReissueController(OnlineControllerConfig config)
    : config_(config),
      policy_(ReissuePolicy::single_r(0.0, config.budget)),
      tail_sketch_(config.percentile) {
  if (!(config.percentile > 0.0 && config.percentile < 1.0)) {
    throw std::invalid_argument("online: percentile in (0,1)");
  }
  if (!(config.budget >= 0.0 && config.budget <= 1.0)) {
    throw std::invalid_argument("online: budget in [0,1]");
  }
  if (config.window == 0) {
    throw std::invalid_argument("online: window must be > 0");
  }
  if (config.reoptimize_interval == 0) {
    throw std::invalid_argument("online: reoptimize_interval must be > 0");
  }
  if (!(config.learning_rate > 0.0 && config.learning_rate <= 1.0)) {
    throw std::invalid_argument("online: learning_rate in (0,1]");
  }
  primary_window_.resize(config.window);
  pair_window_.resize(config.window);
}

void OnlineReissueController::record_primary(double response_time) {
  std::lock_guard lock(mutex_);
  primary_window_[primary_next_] = response_time;
  primary_next_ = (primary_next_ + 1) % primary_window_.size();
  primary_count_ = std::min(primary_count_ + 1, primary_window_.size());
  if (++since_reoptimize_ >= config_.reoptimize_interval &&
      primary_count_ >= std::min(config_.reoptimize_interval,
                                 primary_window_.size())) {
    since_reoptimize_ = 0;
    reoptimize_locked();
  }
}

void OnlineReissueController::record_reissue(double primary_response,
                                             double reissue_response) {
  std::lock_guard lock(mutex_);
  pair_window_[pair_next_] = {primary_response, reissue_response};
  pair_next_ = (pair_next_ + 1) % pair_window_.size();
  pair_count_ = std::min(pair_count_ + 1, pair_window_.size());
}

void OnlineReissueController::record_query_latency(double latency) {
  std::lock_guard lock(mutex_);
  tail_sketch_.add(latency);
}

ReissuePolicy OnlineReissueController::policy() const {
  std::lock_guard lock(mutex_);
  return policy_;
}

double OnlineReissueController::tail_estimate() const {
  std::lock_guard lock(mutex_);
  return tail_sketch_.estimate();
}

std::uint64_t OnlineReissueController::reoptimizations() const {
  std::lock_guard lock(mutex_);
  return reoptimizations_;
}

double OnlineReissueController::predicted_tail() const {
  std::lock_guard lock(mutex_);
  return predicted_tail_;
}

void OnlineReissueController::reoptimize_locked() {
  std::vector<double> primaries(
      primary_window_.begin(),
      primary_window_.begin() + static_cast<long>(primary_count_));
  const stats::EmpiricalCdf rx(std::move(primaries));

  OptimizerResult local;
  if (config_.use_correlation && pair_count_ >= config_.min_pairs) {
    std::vector<std::pair<double, double>> pairs(
        pair_window_.begin(),
        pair_window_.begin() + static_cast<long>(pair_count_));
    const stats::JointSamples joint(std::move(pairs));
    local = compute_optimal_single_r_correlated(rx, joint, config_.percentile,
                                                config_.budget);
  } else if (pair_count_ > 0) {
    std::vector<double> ys;
    ys.reserve(pair_count_);
    for (std::size_t i = 0; i < pair_count_; ++i) {
      ys.push_back(pair_window_[i].second);
    }
    local = compute_optimal_single_r(rx, stats::EmpiricalCdf(std::move(ys)),
                                     config_.percentile, config_.budget);
  } else {
    local = compute_optimal_single_r(rx, rx, config_.percentile,
                                     config_.budget);
  }

  const double d = policy_.delay();
  const double d_next = d + config_.learning_rate * (local.delay - d);
  const double tail = rx.tail(d_next);
  const double q_next =
      tail > 0.0 ? std::clamp(config_.budget / tail, 0.0, 1.0) : 1.0;
  policy_ = ReissuePolicy::single_r(d_next, q_next);
  predicted_tail_ = local.predicted_tail_latency;
  ++reoptimizations_;
}

}  // namespace reissue::core
