#include "reissue/core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reissue::core {

namespace {

void validate(const AdaptiveConfig& config) {
  if (!(config.percentile > 0.0 && config.percentile < 1.0)) {
    throw std::invalid_argument("adaptive: percentile in (0,1)");
  }
  if (!(config.budget >= 0.0 && config.budget <= 1.0)) {
    throw std::invalid_argument("adaptive: budget in [0,1]");
  }
  if (!(config.learning_rate > 0.0 && config.learning_rate <= 1.0)) {
    throw std::invalid_argument("adaptive: learning_rate in (0,1]");
  }
  if (config.max_trials < 1) {
    throw std::invalid_argument("adaptive: max_trials >= 1");
  }
}

bool trial_converged(const AdaptiveTrial& trial, const AdaptiveConfig& config) {
  const double pred = std::max(trial.predicted_tail, 1e-12);
  const bool latency_ok =
      std::abs(trial.actual_tail - trial.predicted_tail) <=
      config.tolerance * pred;
  const bool rate_ok =
      std::abs(trial.measured_reissue_rate - config.budget) <=
      config.tolerance * std::max(config.budget, 1e-6);
  return latency_ok && rate_ok;
}

double q_for_budget(const stats::EmpiricalCdf& rx, double budget, double d) {
  const double tail = rx.tail(d);
  if (tail <= 0.0) return 1.0;
  return std::clamp(budget / tail, 0.0, 1.0);
}

/// Shared trial loop; `refine` maps (current delay, optimizer result,
/// fresh primary ECDF) -> next policy.
template <typename Refine>
AdaptiveOutcome adapt_loop(SystemUnderTest& system,
                           const AdaptiveConfig& config,
                           ReissuePolicy initial, Refine refine) {
  AdaptiveOutcome outcome;
  ReissuePolicy policy = std::move(initial);

  for (int trial_idx = 0; trial_idx < config.max_trials; ++trial_idx) {
    const RunResult result = system.run(policy);
    if (result.query_latencies.empty()) {
      throw std::runtime_error("adaptive: system produced an empty run");
    }

    const auto rx = result.primary_cdf();
    OptimizerResult local;
    if (config.use_correlation && !result.correlated_pairs.empty()) {
      local = compute_optimal_single_r_correlated(rx, result.joint(),
                                                  config.percentile,
                                                  config.budget);
    } else {
      local = compute_optimal_single_r(rx, result.reissue_cdf(),
                                       config.percentile, config.budget);
    }

    AdaptiveTrial trial;
    trial.index = trial_idx;
    trial.policy = policy;
    trial.predicted_tail = local.predicted_tail_latency;
    trial.actual_tail = result.tail_latency(config.percentile);
    trial.measured_reissue_rate = result.measured_reissue_rate();
    trial.utilization = result.utilization;
    outcome.trials.push_back(trial);

    if (trial_converged(trial, config)) {
      outcome.converged = true;
      if (config.stop_on_convergence) break;
    }

    policy = refine(policy, local, rx);
  }

  outcome.policy = outcome.trials.empty() ? policy : outcome.trials.back().policy;
  // Report the most recent policy actually evaluated; if we refined after
  // the last trial the refinement was never validated, so prefer the last
  // evaluated one.
  return outcome;
}

}  // namespace

AdaptiveOutcome adapt_single_r(SystemUnderTest& system,
                               const AdaptiveConfig& config) {
  validate(config);
  // P0: reissue immediately with probability B (paper §4.3).
  ReissuePolicy initial = ReissuePolicy::single_r(0.0, config.budget);
  return adapt_loop(
      system, config, std::move(initial),
      [&config](const ReissuePolicy& current, const OptimizerResult& local,
                const stats::EmpiricalCdf& rx) {
        const double d = current.delay();
        const double d_next =
            d + config.learning_rate * (local.delay - d);
        const double q_next = q_for_budget(rx, config.budget, d_next);
        return ReissuePolicy::single_r(d_next, q_next);
      });
}

AdaptiveOutcome adapt_single_d(SystemUnderTest& system,
                               const AdaptiveConfig& config) {
  validate(config);
  if (config.budget <= 0.0) {
    throw std::invalid_argument("adapt_single_d: budget must be > 0");
  }
  // Trial 0 runs without reissues to measure the baseline distribution
  // (SingleD(0) would duplicate every query and can destabilize a loaded
  // system); subsequent trials re-derive d from fresh logs so the measured
  // rate approaches B despite the load the reissues add.
  ReissuePolicy initial = ReissuePolicy::none();
  return adapt_loop(
      system, config, std::move(initial),
      [&config](const ReissuePolicy& current, const OptimizerResult&,
                const stats::EmpiricalCdf& rx) {
        const double d_target = rx.quantile(1.0 - config.budget);
        if (!current.reissues()) {
          return ReissuePolicy::single_d(d_target);
        }
        const double d = current.delay();
        return ReissuePolicy::single_d(
            d + config.learning_rate * (d_target - d));
      });
}

}  // namespace reissue::core
