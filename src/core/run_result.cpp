#include "reissue/core/run_result.hpp"

#include <stdexcept>

#include "reissue/stats/summary.hpp"

namespace reissue::core {

double RunResult::tail_latency(double k) const {
  if (query_latencies.empty()) {
    throw std::logic_error("RunResult::tail_latency on empty run");
  }
  return stats::percentile(query_latencies, k * 100.0);
}

stats::EmpiricalCdf RunResult::primary_cdf() const {
  return stats::EmpiricalCdf(primary_latencies);
}

stats::EmpiricalCdf RunResult::reissue_cdf() const {
  if (reissue_latencies.empty()) {
    return stats::EmpiricalCdf(primary_latencies);
  }
  return stats::EmpiricalCdf(reissue_latencies);
}

stats::JointSamples RunResult::joint() const {
  if (!correlated_pairs.empty()) {
    return stats::JointSamples(correlated_pairs);
  }
  std::vector<std::pair<double, double>> self;
  self.reserve(primary_latencies.size());
  for (double x : primary_latencies) self.emplace_back(x, x);
  return stats::JointSamples(std::move(self));
}

double RunResult::remediation_rate(double t) const {
  if (reissue_latencies.empty()) return 0.0;
  if (correlated_pairs.size() != reissue_latencies.size() ||
      reissue_delays.size() != reissue_latencies.size()) {
    throw std::logic_error(
        "RunResult: reissue logs out of sync (pairs/delays/latencies)");
  }
  std::size_t remediated = 0;
  for (std::size_t i = 0; i < reissue_latencies.size(); ++i) {
    const double x = correlated_pairs[i].first;
    const double y = reissue_latencies[i];
    const double d = reissue_delays[i];
    if (x > t && y < t - d) ++remediated;
  }
  return static_cast<double>(remediated) /
         static_cast<double>(reissue_latencies.size());
}

}  // namespace reissue::core
