#include "reissue/core/run_result.hpp"

#include <stdexcept>
#include <utility>

#include "reissue/stats/summary.hpp"

namespace reissue::core {

double RunResult::tail_latency(double k) const {
  if (query_latencies.empty()) {
    throw std::logic_error("RunResult::tail_latency on empty run");
  }
  return stats::percentile(query_latencies, k * 100.0);
}

stats::EmpiricalCdf RunResult::primary_cdf() const {
  return stats::EmpiricalCdf(primary_latencies);
}

stats::EmpiricalCdf RunResult::reissue_cdf() const {
  if (reissue_latencies.empty()) {
    return stats::EmpiricalCdf(primary_latencies);
  }
  return stats::EmpiricalCdf(reissue_latencies);
}

stats::JointSamples RunResult::joint() const {
  if (!correlated_pairs.empty()) {
    return stats::JointSamples(correlated_pairs);
  }
  std::vector<std::pair<double, double>> self;
  self.reserve(primary_latencies.size());
  for (double x : primary_latencies) self.emplace_back(x, x);
  return stats::JointSamples(std::move(self));
}

RunResultBuilder::RunResultBuilder(std::size_t expected_queries) {
  result_.query_latencies.reserve(expected_queries);
  result_.primary_latencies.reserve(expected_queries);
}

void RunResultBuilder::on_query(double latency, double primary) {
  result_.query_latencies.push_back(latency);
  result_.primary_latencies.push_back(primary);
}

void RunResultBuilder::on_reissue(double primary, double response,
                                  double delay, bool cancelled) {
  if (cancelled) return;  // no real Y observation
  result_.reissue_latencies.push_back(response);
  result_.correlated_pairs.emplace_back(primary, response);
  result_.reissue_delays.push_back(delay);
}

void RunResultBuilder::on_complete(std::size_t queries,
                                   std::size_t reissues_issued,
                                   double utilization) {
  result_.queries = queries;
  result_.reissues_issued = reissues_issued;
  result_.utilization = utilization;
}

RunResult RunResultBuilder::take() { return std::move(result_); }

void SystemUnderTest::run_streaming(const ReissuePolicy& policy,
                                    RunObserver& observer) {
  const RunResult result = run(policy);
  if (result.query_latencies.size() != result.primary_latencies.size()) {
    throw std::logic_error("run_streaming: X logs out of sync");
  }
  for (std::size_t i = 0; i < result.query_latencies.size(); ++i) {
    observer.on_query(result.query_latencies[i], result.primary_latencies[i]);
  }
  // Replayed reissue logs contain only uncancelled copies; on_complete
  // carries the authoritative issue count.
  if (!result.reissue_latencies.empty() &&
      (result.correlated_pairs.size() != result.reissue_latencies.size() ||
       result.reissue_delays.size() != result.reissue_latencies.size())) {
    throw std::logic_error("run_streaming: Y logs out of sync");
  }
  for (std::size_t i = 0; i < result.reissue_latencies.size(); ++i) {
    observer.on_reissue(result.correlated_pairs[i].first,
                        result.reissue_latencies[i], result.reissue_delays[i],
                        /*cancelled=*/false);
  }
  observer.on_complete(result.queries, result.reissues_issued,
                       result.utilization);
}

double RunResult::remediation_rate(double t) const {
  if (reissue_latencies.empty()) return 0.0;
  if (correlated_pairs.size() != reissue_latencies.size() ||
      reissue_delays.size() != reissue_latencies.size()) {
    throw std::logic_error(
        "RunResult: reissue logs out of sync (pairs/delays/latencies)");
  }
  std::size_t remediated = 0;
  for (std::size_t i = 0; i < reissue_latencies.size(); ++i) {
    const double x = correlated_pairs[i].first;
    const double y = reissue_latencies[i];
    const double d = reissue_delays[i];
    if (x > t && y < t - d) ++remediated;
  }
  return static_cast<double>(remediated) /
         static_cast<double>(reissue_latencies.size());
}

}  // namespace reissue::core
