// Iterative adaptation for load-dependent queueing delays (paper §4.3).
//
// Reissue requests add load, which perturbs the very response-time
// distributions the optimizer was computed from.  The adaptive controller
// closes the loop:
//
//   1. start with P0 = SingleR(d = 0, q = B)  (immediate, budget-bounded);
//   2. run the system under the current policy, log RX / RY / pairs;
//   3. compute P_local = ComputeOptimalSingleR on the fresh logs;
//   4. move the delay part-way:  d' = d + lambda (d_local - d);
//      re-derive q' = min(1, B / Pr(X > d')) from the fresh primary log;
//   5. repeat until the observed kth-percentile latency matches the
//      optimizer's prediction and the measured reissue rate matches B.
//
// Every trial is recorded (predicted vs actual), which is exactly the data
// behind the paper's Figure 2b convergence plot.
#pragma once

#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"

namespace reissue::core {

struct AdaptiveConfig {
  /// Target percentile k in (0,1), e.g. 0.95 or 0.99.
  double percentile = 0.99;
  /// Reissue budget B (expected fraction of queries reissued).
  double budget = 0.05;
  /// Learning rate lambda in (0,1]; the paper uses 0.2 (Fig. 2b) and 0.5
  /// for the system experiments (§6.1).
  double learning_rate = 0.5;
  /// Maximum number of trials (system runs).
  int max_trials = 10;
  /// Convergence declared when |actual - predicted| <= tol * predicted and
  /// |measured rate - B| <= tol * max(B, 1e-6).
  double tolerance = 0.05;
  /// Use the §4.2 correlation-aware optimizer on the logged pairs.
  bool use_correlation = true;
  /// Stop early once converged (otherwise always run max_trials).
  bool stop_on_convergence = false;
};

struct AdaptiveTrial {
  int index = 0;
  ReissuePolicy policy = ReissuePolicy::none();
  /// Optimizer's predicted kth-percentile latency from this trial's logs.
  double predicted_tail = 0.0;
  /// Observed kth-percentile end-to-end latency under `policy`.
  double actual_tail = 0.0;
  double measured_reissue_rate = 0.0;
  double utilization = 0.0;
};

struct AdaptiveOutcome {
  /// The final refined policy.
  ReissuePolicy policy = ReissuePolicy::none();
  /// Per-trial history (Figure 2b's Predicted / Actual series).
  std::vector<AdaptiveTrial> trials;
  bool converged = false;

  /// Observed tail latency of the last trial.
  [[nodiscard]] double final_tail() const {
    return trials.empty() ? 0.0 : trials.back().actual_tail;
  }
};

/// Runs the §4.3 adaptive refinement loop against `system`.
[[nodiscard]] AdaptiveOutcome adapt_single_r(SystemUnderTest& system,
                                             const AdaptiveConfig& config);

/// Adaptive refinement for SingleD (delay-only, q pinned to 1).  The paper
/// uses this to make SingleD satisfy its budget under queueing (§5.1):
/// added load shifts the primary distribution, so d must be re-derived from
/// fresh logs until the measured rate matches B.
[[nodiscard]] AdaptiveOutcome adapt_single_d(SystemUnderTest& system,
                                             const AdaptiveConfig& config);

}  // namespace reissue::core
