// Data-driven parameter search for the optimal SingleR policy
// (paper §4.1 Figure 1, and the §4.2 correlation-aware variant).
//
// Given sampled primary response times RX, reissue response times RY, a
// target percentile k (e.g. 0.95) and a reissue budget B, find the reissue
// delay d* and probability q minimizing the kth percentile tail latency:
//
//   minimize t  s.t.  Pr(X<=t) + q Pr(X>t) Pr(Y<=t-d) >= k,
//                     q Pr(X>d) <= B.
//
// `compute_optimal_single_r` is the faithful O(N + sort) two-pointer scan
// of Figure 1.  `compute_optimal_single_r_brute` is the O(N^2) exhaustive
// reference used by the test suite to certify optimality.  The correlated
// variants replace Pr(Y<=t-d) with Pr(Y<=t-d | X>t) via 2-D range counting
// (O(N log^2 N) here; the paper cites O(N log N) with fractional
// cascading -- same asymptotic family, simpler structure).
#pragma once

#include <cstddef>
#include <optional>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/stats/ecdf.hpp"
#include "reissue/stats/joint_samples.hpp"

namespace reissue::core {

struct OptimizerResult {
  /// Optimal reissue delay d*.
  double delay = 0.0;
  /// Optimal reissue probability q = min(1, B / Pr(X > d*)).
  double probability = 0.0;
  /// Smallest verified kth-percentile tail latency.
  double predicted_tail_latency = 0.0;
  /// Success rate Pr(Q <= t) at the returned (delay, tail latency).
  double predicted_success_rate = 0.0;

  [[nodiscard]] ReissuePolicy policy() const {
    return ReissuePolicy::single_r(delay, probability);
  }
};

/// Faithful implementation of paper Fig. 1 ComputeOptimalSingleR.
/// k in (0,1), budget >= 0.  Throws std::invalid_argument on bad inputs or
/// empty logs.
[[nodiscard]] OptimizerResult compute_optimal_single_r(
    const stats::EmpiricalCdf& rx, const stats::EmpiricalCdf& ry, double k,
    double budget);

/// Exhaustive O(N^2) reference optimizer over all (d, t) sample pairs.
/// Used in tests; matches compute_optimal_single_r on its feasibility rule.
[[nodiscard]] OptimizerResult compute_optimal_single_r_brute(
    const stats::EmpiricalCdf& rx, const stats::EmpiricalCdf& ry, double k,
    double budget);

/// §4.2: correlation-aware search using Pr(Y <= t-d | X > t).
/// `rx` is the FULL primary log; `joint` holds (primary, reissue) pairs
/// for the queries that issued reissues (a conditioned subsample under a
/// delayed policy -- see single_r_success_rate_correlated).
[[nodiscard]] OptimizerResult compute_optimal_single_r_correlated(
    const stats::EmpiricalCdf& rx, const stats::JointSamples& joint, double k,
    double budget);

/// Exhaustive correlated reference (tests only; O(N^2 log^2 N)).
[[nodiscard]] OptimizerResult compute_optimal_single_r_correlated_brute(
    const stats::EmpiricalCdf& rx, const stats::JointSamples& joint, double k,
    double budget);

/// The SingleD policy spending exactly `budget`: d s.t. Pr(X > d) = B,
/// i.e. d = the (1-B) empirical quantile of RX (paper Eq. (2)).
[[nodiscard]] ReissuePolicy single_d_for_budget(const stats::EmpiricalCdf& rx,
                                                double budget);

// --------------------------------------------- training-run entry points
//
// Optimizer-in-the-loop sweeps (the exp engine's `optimal:*` policy
// specs) train the optimizer on a run's observed logs instead of
// caller-assembled ECDFs.  `train_limit` caps the training sample count:
// the primary log is sliced to its first `train_limit` observations and
// the logged (primary, reissue) pairs to the proportional prefix (pairs
// arrive in query order, so the prefix is the pairs of the kept queries
// up to coin-flip granularity).  0 means the whole run.

/// §4.1 scan (or the §4.2 correlated variant) on a training run's logs.
/// Uncorrelated: RY is the run's reissue log when the run issued reissues,
/// else RX itself (the Y ~ X assumption of a no-reissue training run).
/// Correlated: the logged pairs feed the conditional estimator; a run with
/// no reissues falls back to pairing the primary log with itself, which
/// assumes perfect correlation and therefore predicts no benefit — train
/// the correlated variant under a probing policy that issues reissues.
/// Throws std::invalid_argument on an empty primary log or bad (k, B).
[[nodiscard]] OptimizerResult optimize_single_r_from_run(
    const RunResult& train, double k, double budget, bool correlated,
    std::size_t train_limit = 0);

/// Budget-matched SingleD (paper Eq. (2)) from a training run's primary
/// log, sliced like optimize_single_r_from_run.
[[nodiscard]] ReissuePolicy optimal_single_d_from_run(const RunResult& train,
                                                      double budget,
                                                      std::size_t train_limit = 0);

}  // namespace reissue::core
