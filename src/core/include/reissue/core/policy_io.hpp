// Plain-text serialization for policies and response-time logs, so that
// operators can feed production latency logs into the optimizer and store
// the resulting policies.  Formats are deliberately simple:
//
//   latency log: one non-negative double per line; '#' comments allowed.
//   policy:      "<Family> d=<delay> q=<prob> [d=... q=...]" single line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "reissue/core/policy.hpp"

namespace reissue::core {

/// Writes one sample per line.
void write_latency_log(std::ostream& os, const std::vector<double>& samples);

/// Parses a latency log; skips blank lines and '#' comments.  Throws
/// std::runtime_error on malformed or negative entries.
[[nodiscard]] std::vector<double> read_latency_log(std::istream& is);

/// Serializes a policy to a single line, e.g. "SingleR d=12.5 q=0.4".
[[nodiscard]] std::string policy_to_line(const ReissuePolicy& policy);

/// Parses the format produced by policy_to_line.  Throws std::runtime_error
/// on malformed input.
[[nodiscard]] ReissuePolicy policy_from_line(const std::string& line);

}  // namespace reissue::core
