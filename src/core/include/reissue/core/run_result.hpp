// The observable outcome of running a workload under a reissue policy:
// per-query response-time logs plus aggregate counters.  Produced by the
// DES cluster (src/sim) and by the real-time middleware (src/runtime);
// consumed by the policy optimizer, the adaptive controller and the metric
// helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/stats/ecdf.hpp"
#include "reissue/stats/joint_samples.hpp"

namespace reissue::core {

struct RunResult {
  /// End-to-end query latency: first response among all copies, measured
  /// from the primary dispatch.  One entry per query.
  std::vector<double> query_latencies;

  /// Response time of the primary copy of each query (measured even when a
  /// reissue copy answered first -- both copies run to completion).
  std::vector<double> primary_latencies;

  /// Response time of each *issued* reissue copy, measured from its own
  /// dispatch (the paper's Y variable).
  std::vector<double> reissue_latencies;

  /// (primary response time, reissue response time) pairs for queries that
  /// issued a reissue copy; feeds the §4.2 conditional-CDF estimator.
  std::vector<std::pair<double, double>> correlated_pairs;

  /// Reissue delay actually in effect for each issued copy (paired with
  /// reissue_latencies); used by the remediation-rate metric.
  std::vector<double> reissue_delays;

  std::size_t queries = 0;
  std::size_t reissues_issued = 0;

  /// Fraction of wall (simulated) time the servers were busy, averaged
  /// over servers.  0 when the run had no notion of servers.
  double utilization = 0.0;

  /// Issued reissues / queries.
  [[nodiscard]] double measured_reissue_rate() const {
    return queries == 0
               ? 0.0
               : static_cast<double>(reissues_issued) /
                     static_cast<double>(queries);
  }

  /// kth-percentile (k in (0,1)) end-to-end latency.
  [[nodiscard]] double tail_latency(double k) const;

  /// ECDF of the primary log.  Throws if the log is empty.
  [[nodiscard]] stats::EmpiricalCdf primary_cdf() const;

  /// ECDF of the reissue log; falls back to the primary log when no
  /// reissues were issued (so the optimizer always has a Y distribution).
  [[nodiscard]] stats::EmpiricalCdf reissue_cdf() const;

  /// Joint samples for the correlated optimizer; falls back to pairing the
  /// primary log with itself when no reissues were issued.
  [[nodiscard]] stats::JointSamples joint() const;

  /// Remediation rate (paper §5.1 / Fig. 3b): among issued reissues, the
  /// fraction where the primary missed `t` but the reissue answered within
  /// t - d.  Returns 0 when no reissues were issued.
  [[nodiscard]] double remediation_rate(double t) const;
};

/// How a run's observations are delivered to the caller.
///
///   kFull      — materialize the complete X/Y logs as a RunResult: what
///                the §4.2 optimizer and the conditional-CDF estimator
///                consume.  Memory and post-processing cost grow with the
///                query count.
///   kStreaming — feed each observation into a RunObserver as the run
///                finalizes, without materializing the logs: O(1) memory
///                per metric, in the same query-id order kFull logs carry
///                (the "replay" metric mode — golden-pinned against kFull).
///   kStreamingUnordered
///              — feed each observation into a RunObserver the moment it
///                becomes known, in completion order, skipping the
///                end-of-run replay pass over the per-query state
///                entirely.  The observation *multiset* is identical to
///                kStreaming (same values, bit-for-bit) but the delivery
///                order is not, so order-sensitive accumulators (the P²
///                sketch) produce different — still deterministic —
///                estimates and carry their own pinned baselines.  The
///                experiment engine's default for deep-tail sweeps.
enum class LogMode { kFull, kStreaming, kStreamingUnordered };

/// Streaming consumer of one run's observations (LogMode::kStreaming and
/// LogMode::kStreamingUnordered).
///
/// Ordered contract (kStreaming): queries are reported in query-id
/// (arrival) order, each query's issued reissue copies in issue order;
/// whether on_reissue calls interleave with on_query calls is unspecified.
/// Unordered contract (kStreamingUnordered): the same calls with the same
/// arguments arrive in an unspecified — but deterministic per (system,
/// seed, policy) — order; a query is reported once all its inputs are
/// known (for the DES cluster: at its primary copy's completion).  In both
/// modes on_complete fires exactly once, last, and carries the
/// authoritative totals (observers must not count on_reissue calls to
/// obtain reissues_issued: cancelled copies are omitted).
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// One logged (post-warmup) query: end-to-end latency (first response
  /// among all copies) and the primary copy's own response time (X).
  virtual void on_query(double latency, double primary) = 0;

  /// One issued reissue copy of a logged query: the paired primary
  /// response (X), the copy's own response measured from its dispatch (Y),
  /// the reissue delay actually in effect, and whether the copy was lazily
  /// cancelled (cancelled copies carry no real Y observation).
  virtual void on_reissue(double primary, double response, double delay,
                          bool cancelled) = 0;

  /// Run totals: logged queries, issued reissues (cancelled included) and
  /// mean server utilization.
  virtual void on_complete(std::size_t queries, std::size_t reissues_issued,
                           double utilization) = 0;
};

/// RunObserver that materializes the full RunResult logs; LogMode::kFull
/// is defined as streaming into this builder.
class RunResultBuilder final : public RunObserver {
 public:
  /// `expected_queries` pre-sizes the per-query logs.
  explicit RunResultBuilder(std::size_t expected_queries = 0);

  void on_query(double latency, double primary) override;
  void on_reissue(double primary, double response, double delay,
                  bool cancelled) override;
  void on_complete(std::size_t queries, std::size_t reissues_issued,
                   double utilization) override;

  /// Moves the accumulated result out; the builder is then empty.
  [[nodiscard]] RunResult take();

 private:
  RunResult result_;
};

/// Abstract system the adaptive controller (§4.3) drives: run the workload
/// under a policy, observe the logs.  Implemented by the DES cluster and
/// the system-substrate harnesses.
class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;

  /// Executes the workload under `policy` and returns the observed logs
  /// (LogMode::kFull).
  [[nodiscard]] virtual RunResult run(const ReissuePolicy& policy) = 0;

  /// Executes the workload under `policy`, streaming observations into
  /// `observer` (LogMode::kStreaming).  The default implementation runs a
  /// full run and replays its logs, so every system supports streaming
  /// consumers; systems with a true streaming path (the DES cluster)
  /// override this to skip log materialization entirely.
  virtual void run_streaming(const ReissuePolicy& policy,
                             RunObserver& observer);

  /// Executes the workload under `policy`, streaming observations into
  /// `observer` in completion order (LogMode::kStreamingUnordered).  The
  /// unordered contract permits any deterministic delivery order, so the
  /// default implementation simply delegates to run_streaming (replay
  /// order is one legal order); systems with a native completion-order
  /// path (the DES cluster) override this to accumulate metrics inside
  /// the event loop and skip the finalize replay pass.
  virtual void run_streaming_unordered(const ReissuePolicy& policy,
                                       RunObserver& observer) {
    run_streaming(policy, observer);
  }

  /// Re-seeds the system's stochastic streams so the next run() is an
  /// independent replication.  Returns false when the system has no notion
  /// of reseeding (callers such as the experiment engine then rebuild the
  /// system instead of reusing it).
  virtual bool reseed(std::uint64_t /*seed*/) { return false; }
};

}  // namespace reissue::core
