// Grid-search optimizer for DoubleR policies, used to validate Theorem 3.1
// numerically: with the same budget, the best DoubleR policy achieves the
// same kth-percentile tail latency as the best SingleR policy (DoubleR can
// never do better, and SingleR is the q2=0 special case so it can never do
// worse).
//
// The search grids d1 < d2 over empirical quantiles of RX and q1 over
// [0, min(1, B/Pr(X>d1))]; q2 is then pinned by spending the remaining
// budget with equality per Eq. (15):
//
//   q2 = (B - q1 Pr(X>d1)) / (Pr(X>d2) (1 - q1 Pr(Y<=d2-d1)))
//
// clamped to [0,1].  This is exponentially cheaper than a free 4-parameter
// grid and loses nothing: success rate is nondecreasing in q2, so the
// budget constraint is always tight at the optimum.
#pragma once

#include <cstddef>

#include "reissue/core/policy.hpp"
#include "reissue/stats/ecdf.hpp"

namespace reissue::core {

struct DoubleRResult {
  ReissuePolicy policy = ReissuePolicy::none();
  double tail_latency = 0.0;
  double budget_spent = 0.0;
};

struct DoubleRSearchConfig {
  /// Number of quantile grid points for each of d1 and d2.
  std::size_t delay_grid = 40;
  /// Number of grid points for q1 in [0, q1_max].
  std::size_t q1_grid = 40;
};

/// Best DoubleR policy for (k, budget) under the independent model, by
/// constrained grid search.  Throws on invalid k/budget or empty logs.
[[nodiscard]] DoubleRResult compute_optimal_double_r(
    const stats::EmpiricalCdf& rx, const stats::EmpiricalCdf& ry, double k,
    double budget, const DoubleRSearchConfig& config = {});

struct MultipleRResult {
  ReissuePolicy policy = ReissuePolicy::none();
  double tail_latency = 0.0;
  double budget_spent = 0.0;
  int rounds = 0;
};

struct MultipleRSearchConfig {
  /// Quantile grid points for each stage delay.
  std::size_t delay_grid = 32;
  /// Grid points for each stage probability in [0, 1].
  std::size_t q_grid = 24;
  /// Coordinate-descent rounds over the stages.
  int max_rounds = 4;
};

/// Best n-stage MultipleR policy for (k, budget) under the independent
/// model, by coordinate descent: stages start evenly spread over the RX
/// quantiles with equal budget shares, then each stage's (d, q) is
/// re-optimized on a grid holding the others fixed, subject to the Eq.(15)
/// total-budget constraint.  Used to validate Theorem 3.2 (n-stage
/// policies gain nothing over SingleR) beyond the DoubleR case.
[[nodiscard]] MultipleRResult compute_optimal_multiple_r(
    const stats::EmpiricalCdf& rx, const stats::EmpiricalCdf& ry, double k,
    double budget, std::size_t stages,
    const MultipleRSearchConfig& config = {});

}  // namespace reissue::core
