// On-line policy adaptation for drifting workloads (paper §4.4 "Varying
// load / response-time distributions"): response-time distributions shift
// on hourly/daily/seasonal scales, so the SingleR parameters must track
// them without stopping the service for batch re-optimization.
//
// The controller keeps a sliding window of the most recent primary
// response times (and (primary, reissue) pairs when available) and
// recomputes ComputeOptimalSingleR every `reoptimize_interval`
// observations, smoothing the delay with the same learning-rate rule as
// the §4.3 batch loop.  A P² sketch tracks the live tail percentile for
// monitoring without storing the full history.
//
// Thread-safe: the record path takes a mutex and is O(1) amortized
// (re-optimization cost Θ(W log W) is paid once per interval).
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/core/policy.hpp"
#include "reissue/stats/psquare.hpp"

namespace reissue::core {

struct OnlineControllerConfig {
  /// Tail percentile to minimize, in (0,1).
  double percentile = 0.99;
  /// Reissue budget B.
  double budget = 0.02;
  /// Sliding-window length (primary samples kept).
  std::size_t window = 8192;
  /// Re-optimize after this many new primary observations.
  std::size_t reoptimize_interval = 1024;
  /// Delay smoothing: d' = d + rate * (d_local - d).
  double learning_rate = 0.5;
  /// Use Pr(Y <= t-d | X > t) from the windowed pairs when enough exist.
  bool use_correlation = true;
  /// Minimum pairs in the window before the correlated estimator is used.
  std::size_t min_pairs = 256;
};

class OnlineReissueController {
 public:
  explicit OnlineReissueController(OnlineControllerConfig config);

  /// Records a primary copy's response time.  Triggers re-optimization
  /// every `reoptimize_interval` calls once the window has filled enough.
  void record_primary(double response_time);

  /// Records an issued reissue copy: its primary's response time and its
  /// own response time (measured from its dispatch).
  void record_reissue(double primary_response, double reissue_response);

  /// Records an end-to-end query latency (monitoring only).
  void record_query_latency(double latency);

  /// The current recommended policy (starts as SingleR(0, B)).
  [[nodiscard]] ReissuePolicy policy() const;

  /// Live estimate of the monitored tail percentile (P² sketch).
  [[nodiscard]] double tail_estimate() const;

  /// Number of re-optimizations performed so far.
  [[nodiscard]] std::uint64_t reoptimizations() const;

  /// Latest optimizer prediction for the tail latency (0 before the
  /// first re-optimization).
  [[nodiscard]] double predicted_tail() const;

 private:
  void reoptimize_locked();

  OnlineControllerConfig config_;
  mutable std::mutex mutex_;

  // Ring buffer of primary samples.
  std::vector<double> primary_window_;
  std::size_t primary_next_ = 0;
  std::size_t primary_count_ = 0;

  // Ring buffer of (primary, reissue) pairs.
  std::vector<std::pair<double, double>> pair_window_;
  std::size_t pair_next_ = 0;
  std::size_t pair_count_ = 0;

  std::size_t since_reoptimize_ = 0;
  std::uint64_t reoptimizations_ = 0;
  double predicted_tail_ = 0.0;
  ReissuePolicy policy_;
  stats::PSquareQuantile tail_sketch_;
};

}  // namespace reissue::core
