// Analytic success-rate and budget evaluators over empirical response-time
// distributions.
//
// These implement the paper's equations:
//   Eq. (1)  Pr(Q<=t) for SingleD,
//   Eq. (3)  Pr(Q<=t) for SingleR,
//   Eq. (8)  Pr(Q<=t) for DoubleR,
//   Eq. (2)/(4)/(15)  budgets,
// with CDFs evaluated on sampled logs (paper Fig. 1 `DiscreteCDF`), and the
// §4.2 variant that conditions the reissue distribution on the primary
// missing the deadline: Pr(Y <= t-d | X > t).
#pragma once

#include "reissue/core/policy.hpp"
#include "reissue/stats/ecdf.hpp"
#include "reissue/stats/joint_samples.hpp"

namespace reissue::core {

/// Paper Fig. 1 `SingleRSuccessRate(RX, RY, B, t, d)`: the probability that
/// a query completes by t under the SingleR policy that reissues at d and
/// spends the whole budget B, i.e. q = B / Pr(X > d).
///
/// Deviation from the pseudocode (documented in DESIGN.md): q is clamped to
/// [0, 1] so the returned value is a probability even when Pr(X > d) < B.
[[nodiscard]] double single_r_success_rate(const stats::EmpiricalCdf& rx,
                                           const stats::EmpiricalCdf& ry,
                                           double budget, double t, double d);

/// Correlation-aware variant (§4.2): uses Pr(Y <= t-d | X > t) estimated
/// from the joint (primary, reissue) log instead of the independent
/// marginal.  `rx` must be the FULL primary response-time log: the joint
/// log only covers queries that actually issued a reissue, which under a
/// delayed policy is a sample conditioned on X > d -- using its x-marginal
/// as the primary distribution would bias every estimate rightward (and
/// makes the §4.3 adaptive loop diverge).
[[nodiscard]] double single_r_success_rate_correlated(
    const stats::EmpiricalCdf& rx, const stats::JointSamples& joint,
    double budget, double t, double d);

/// Pr(Q <= t) for an arbitrary stage-list policy under the independent
/// model, computed by the DoubleR-style expansion: a stage contributes if
/// the primary misses t, its coin succeeds and its copy answers within
/// t - d_i.  Earlier stage copies that answer by d_j suppress later stages'
/// contribution per Eq. (10)'s (1 - q1 Pr(Y1 <= t - d1)) factor.
[[nodiscard]] double policy_success_rate(const stats::EmpiricalCdf& rx,
                                         const stats::EmpiricalCdf& ry,
                                         const ReissuePolicy& policy, double t);

/// Expected reissue rate (budget consumed) of a policy under the
/// independent model: Eq. (4) for one stage, Eq. (15)-style accumulation
/// for multi-stage policies (a stage only fires if no earlier copy has
/// answered by its delay).
[[nodiscard]] double policy_budget(const stats::EmpiricalCdf& rx,
                                   const stats::EmpiricalCdf& ry,
                                   const ReissuePolicy& policy);

/// Smallest sample value t in `rx`'s support with
/// policy_success_rate(t) >= k, or rx.max() if none.  A convenience used by
/// brute-force optimizers and tests.
[[nodiscard]] double policy_tail_latency(const stats::EmpiricalCdf& rx,
                                         const stats::EmpiricalCdf& ry,
                                         const ReissuePolicy& policy, double k);

}  // namespace reissue::core
