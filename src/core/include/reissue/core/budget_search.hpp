// Reissue-budget selection (paper §4.4 and Figure 8).
//
// Tail latency as a function of the reissue budget tends to be a parabola:
// too little redundancy leaves tail queries unremediated, too much inflates
// load.  The paper's procedure walks the budget with an expanding /
// halving-and-reversing step:
//
//   1. delta = 1%, best = 0;
//   2. evaluate budget best + delta (5 adaptive trials -> policy -> P99);
//   3. improved?  accept, delta *= 3/2.  worse?  delta = -delta/2;
//   4. repeat.
//
// `minimize_budget_for_sla` is the §4.4 SLA variant: find the smallest
// budget whose tail latency meets a target T, by transforming latencies
// with f(L) = max(L, T) so that all feasible budgets look equal and the
// search walks down to the cheapest one.
#pragma once

#include <functional>
#include <vector>

namespace reissue::core {

/// Evaluates one candidate budget and returns the achieved tail latency.
/// Implementations typically run the adaptive optimizer for a few trials
/// and measure the resulting kth-percentile latency.
using BudgetEvaluator = std::function<double(double budget)>;

struct BudgetTrial {
  int index = 0;
  double budget = 0.0;
  double tail_latency = 0.0;
  bool accepted = false;
};

struct BudgetSearchConfig {
  double initial_delta = 0.01;  // paper: 1%
  double grow = 1.5;            // paper: delta = 3*delta/2 on success
  double shrink = -0.5;         // paper: delta = -delta/2 on failure
  int max_trials = 14;
  double min_budget = 0.0;
  double max_budget = 0.5;
  /// Stop when |delta| falls below this.
  double min_delta = 1e-3;
};

struct BudgetSearchOutcome {
  double best_budget = 0.0;
  double best_tail_latency = 0.0;
  /// All evaluated trials in order (the two series of Figure 8).
  std::vector<BudgetTrial> trials;
};

/// Runs the §4.4 budget search.  `evaluate` is called once per trial.
[[nodiscard]] BudgetSearchOutcome search_optimal_budget(
    const BudgetEvaluator& evaluate, const BudgetSearchConfig& config = {});

struct SlaOutcome {
  /// Smallest budget meeting the target, or max_budget if unreachable.
  double budget = 0.0;
  double tail_latency = 0.0;
  bool feasible = false;
  std::vector<BudgetTrial> trials;
};

/// Finds the minimal budget with tail latency <= target (§4.4 "meeting
/// tail-latency with minimal resources").
[[nodiscard]] SlaOutcome minimize_budget_for_sla(
    const BudgetEvaluator& evaluate, double target_latency,
    const BudgetSearchConfig& config = {});

}  // namespace reissue::core
