// Reissue policy families from the paper:
//
//   NoReissue            — never reissue (the baseline system).
//   Immediate(n)         — replicate every query n extra times at t = 0
//                          (the "immediate reissue" strategy of prior work).
//   SingleD(d)           — reissue deterministically after delay d
//                          ("Tail at Scale" delayed hedging, §2.2).
//   SingleR(d, q)        — reissue after delay d with probability q (§2.3,
//                          the paper's contribution).
//   MultipleR({dᵢ, qᵢ})  — reissue at multiple times with per-stage
//                          probabilities (§3.1); DoubleR is the 2-stage case.
//
// Operationally a policy is a sequence of *stages*.  At time dᵢ after a
// query's dispatch, if no response has arrived yet, an independent coin
// with success probability qᵢ decides whether to send one more copy.
// SingleD(d) == SingleR(d, 1); Immediate == SingleR(0, 1) repeated.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace reissue::core {

/// One reissue opportunity: at `delay` after dispatch, reissue with
/// probability `probability` if the query is still outstanding.
struct ReissueStage {
  double delay = 0.0;
  double probability = 0.0;

  friend bool operator==(const ReissueStage&, const ReissueStage&) = default;
};

/// Which family a policy belongs to (for reporting; the stage list fully
/// determines runtime behaviour).
enum class PolicyFamily { kNoReissue, kImmediate, kSingleD, kSingleR, kMultipleR };

[[nodiscard]] std::string to_string(PolicyFamily family);

class ReissuePolicy {
 public:
  /// Baseline: never reissue.
  [[nodiscard]] static ReissuePolicy none();

  /// Reissue `copies` extra requests immediately on dispatch.
  [[nodiscard]] static ReissuePolicy immediate(std::size_t copies = 1);

  /// Deterministic delayed reissue after `delay`.
  [[nodiscard]] static ReissuePolicy single_d(double delay);

  /// Random delayed reissue: after `delay`, with probability `probability`.
  [[nodiscard]] static ReissuePolicy single_r(double delay, double probability);

  /// Two-stage random policy (used by the Theorem 3.1 validation).
  [[nodiscard]] static ReissuePolicy double_r(double d1, double q1, double d2,
                                              double q2);

  /// General multi-stage policy; stages are sorted by delay.
  [[nodiscard]] static ReissuePolicy multiple_r(std::vector<ReissueStage> stages);

  [[nodiscard]] PolicyFamily family() const noexcept { return family_; }
  [[nodiscard]] std::span<const ReissueStage> stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stages_.size();
  }
  [[nodiscard]] bool reissues() const noexcept { return !stages_.empty(); }

  /// Delay of the single stage.  Throws std::logic_error unless the policy
  /// has exactly one stage (SingleD / SingleR).
  [[nodiscard]] double delay() const;

  /// Probability of the single stage; same precondition as delay().
  [[nodiscard]] double probability() const;

  /// e.g. "SingleR(d=12.5, q=0.4)".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const ReissuePolicy&, const ReissuePolicy&) = default;

 private:
  ReissuePolicy(PolicyFamily family, std::vector<ReissueStage> stages);

  PolicyFamily family_ = PolicyFamily::kNoReissue;
  std::vector<ReissueStage> stages_;
};

}  // namespace reissue::core
