#include "reissue/core/policy.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reissue::core {

namespace {

void validate_stage(const ReissueStage& s) {
  // The negated form also rejects NaN; infinities would silently poison
  // the simulator's (time, seq) event order downstream.
  if (!(s.delay >= 0.0) || !std::isfinite(s.delay)) {
    throw std::invalid_argument("reissue delay must be finite and >= 0");
  }
  if (!(s.probability >= 0.0 && s.probability <= 1.0)) {
    throw std::invalid_argument("reissue probability must be in [0,1]");
  }
}

}  // namespace

std::string to_string(PolicyFamily family) {
  switch (family) {
    case PolicyFamily::kNoReissue:
      return "NoReissue";
    case PolicyFamily::kImmediate:
      return "Immediate";
    case PolicyFamily::kSingleD:
      return "SingleD";
    case PolicyFamily::kSingleR:
      return "SingleR";
    case PolicyFamily::kMultipleR:
      return "MultipleR";
  }
  return "Unknown";
}

ReissuePolicy::ReissuePolicy(PolicyFamily family,
                             std::vector<ReissueStage> stages)
    : family_(family), stages_(std::move(stages)) {
  for (const auto& s : stages_) validate_stage(s);
  std::stable_sort(stages_.begin(), stages_.end(),
                   [](const ReissueStage& a, const ReissueStage& b) {
                     return a.delay < b.delay;
                   });
}

ReissuePolicy ReissuePolicy::none() {
  return ReissuePolicy(PolicyFamily::kNoReissue, {});
}

ReissuePolicy ReissuePolicy::immediate(std::size_t copies) {
  std::vector<ReissueStage> stages(copies, ReissueStage{0.0, 1.0});
  return ReissuePolicy(PolicyFamily::kImmediate, std::move(stages));
}

ReissuePolicy ReissuePolicy::single_d(double delay) {
  return ReissuePolicy(PolicyFamily::kSingleD, {ReissueStage{delay, 1.0}});
}

ReissuePolicy ReissuePolicy::single_r(double delay, double probability) {
  return ReissuePolicy(PolicyFamily::kSingleR,
                       {ReissueStage{delay, probability}});
}

ReissuePolicy ReissuePolicy::double_r(double d1, double q1, double d2,
                                      double q2) {
  return ReissuePolicy(PolicyFamily::kMultipleR,
                       {ReissueStage{d1, q1}, ReissueStage{d2, q2}});
}

ReissuePolicy ReissuePolicy::multiple_r(std::vector<ReissueStage> stages) {
  return ReissuePolicy(PolicyFamily::kMultipleR, std::move(stages));
}

double ReissuePolicy::delay() const {
  if (stages_.size() != 1) {
    throw std::logic_error("delay() requires a single-stage policy");
  }
  return stages_.front().delay;
}

double ReissuePolicy::probability() const {
  if (stages_.size() != 1) {
    throw std::logic_error("probability() requires a single-stage policy");
  }
  return stages_.front().probability;
}

std::string ReissuePolicy::describe() const {
  std::ostringstream os;
  os << to_string(family_);
  if (stages_.empty()) return os.str();
  os << "(";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) os << "; ";
    os << "d=" << stages_[i].delay << ", q=" << stages_[i].probability;
  }
  os << ")";
  return os.str();
}

}  // namespace reissue::core
