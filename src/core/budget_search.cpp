#include "reissue/core/budget_search.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reissue::core {

namespace {

void validate(const BudgetSearchConfig& config) {
  if (!(config.initial_delta > 0.0)) {
    throw std::invalid_argument("budget search: initial_delta > 0");
  }
  if (!(config.max_budget > config.min_budget)) {
    throw std::invalid_argument("budget search: max_budget > min_budget");
  }
  if (config.max_trials < 1) {
    throw std::invalid_argument("budget search: max_trials >= 1");
  }
}

BudgetSearchOutcome search_impl(const BudgetEvaluator& evaluate,
                                const BudgetSearchConfig& config,
                                const std::function<double(double)>& transform) {
  validate(config);
  BudgetSearchOutcome outcome;
  outcome.best_budget = config.min_budget;
  outcome.best_tail_latency = transform(evaluate(config.min_budget));
  outcome.trials.push_back(BudgetTrial{0, outcome.best_budget,
                                       outcome.best_tail_latency, true});

  double delta = config.initial_delta;
  for (int i = 1; i < config.max_trials; ++i) {
    if (std::abs(delta) < config.min_delta) break;
    const double candidate = std::clamp(outcome.best_budget + delta,
                                        config.min_budget, config.max_budget);
    if (candidate == outcome.best_budget) {
      // Step led nowhere (clamped); reverse and halve like a failure.
      delta *= config.shrink;
      continue;
    }
    const double latency = transform(evaluate(candidate));
    BudgetTrial trial{i, candidate, latency, false};
    if (latency < outcome.best_tail_latency) {
      trial.accepted = true;
      outcome.best_budget = candidate;
      outcome.best_tail_latency = latency;
      delta *= config.grow;
    } else {
      delta *= config.shrink;
    }
    outcome.trials.push_back(trial);
  }
  return outcome;
}

}  // namespace

BudgetSearchOutcome search_optimal_budget(const BudgetEvaluator& evaluate,
                                          const BudgetSearchConfig& config) {
  return search_impl(evaluate, config, [](double latency) { return latency; });
}

SlaOutcome minimize_budget_for_sla(const BudgetEvaluator& evaluate,
                                   double target_latency,
                                   const BudgetSearchConfig& config) {
  if (!(target_latency > 0.0)) {
    throw std::invalid_argument("minimize_budget_for_sla: target > 0");
  }
  // Transform f(L) = max(L, target): every budget meeting the SLA scores
  // identically, so "improvement" only happens while still infeasible and
  // the walk stops growing once feasible.  A final pass over the evaluated
  // trials then picks the cheapest feasible budget.
  const double epsilon = target_latency * 1e-9;
  BudgetSearchOutcome walk = search_impl(
      evaluate, config, [&](double latency) {
        return std::max(latency, target_latency);
      });

  SlaOutcome outcome;
  outcome.trials = walk.trials;
  outcome.budget = config.max_budget;
  outcome.tail_latency = walk.best_tail_latency;
  outcome.feasible = false;
  for (const auto& trial : walk.trials) {
    const bool meets = trial.tail_latency <= target_latency + epsilon;
    if (meets && (!outcome.feasible || trial.budget < outcome.budget)) {
      outcome.feasible = true;
      outcome.budget = trial.budget;
      outcome.tail_latency = trial.tail_latency;
    }
  }
  if (!outcome.feasible) {
    outcome.budget = walk.best_budget;
    outcome.tail_latency = walk.best_tail_latency;
  }
  return outcome;
}

}  // namespace reissue::core
