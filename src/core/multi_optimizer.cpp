#include "reissue/core/multi_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/core/success_rate.hpp"

namespace reissue::core {

namespace {

std::vector<double> quantile_grid(const stats::EmpiricalCdf& cdf,
                                  std::size_t points) {
  std::vector<double> grid;
  grid.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(points);
    grid.push_back(cdf.quantile(p));
  }
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace

DoubleRResult compute_optimal_double_r(const stats::EmpiricalCdf& rx,
                                       const stats::EmpiricalCdf& ry, double k,
                                       double budget,
                                       const DoubleRSearchConfig& config) {
  if (!(k > 0.0 && k < 1.0)) {
    throw std::invalid_argument("compute_optimal_double_r: k in (0,1)");
  }
  if (!(budget >= 0.0)) {
    throw std::invalid_argument("compute_optimal_double_r: budget >= 0");
  }
  if (rx.empty() || ry.empty()) {
    throw std::invalid_argument("compute_optimal_double_r: empty log");
  }

  const auto delays = quantile_grid(rx, config.delay_grid);

  DoubleRResult best;
  best.policy = ReissuePolicy::none();
  best.tail_latency = rx.max();
  best.budget_spent = 0.0;

  auto consider = [&](const ReissuePolicy& policy) {
    const double t = policy_tail_latency(rx, ry, policy, k);
    if (t < best.tail_latency) {
      best.policy = policy;
      best.tail_latency = t;
      best.budget_spent = policy_budget(rx, ry, policy);
    }
  };

  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double d1 = delays[i];
    const double px1 = rx.tail(d1);
    const double q1_max =
        px1 > 0.0 ? std::min(1.0, budget / px1) : 1.0;
    for (std::size_t a = 0; a <= config.q1_grid; ++a) {
      const double q1 = q1_max * static_cast<double>(a) /
                        static_cast<double>(config.q1_grid);
      // Pure SingleR candidate (q2 = 0) with this (d1, q1).
      consider(ReissuePolicy::single_r(d1, q1));
      const double spent1 = q1 * px1;
      const double remaining = budget - spent1;
      if (remaining <= 0.0) continue;
      for (std::size_t j = i; j < delays.size(); ++j) {
        const double d2 = delays[j];
        if (d2 < d1) continue;
        const double px2 = rx.tail(d2);
        if (px2 <= 0.0) continue;
        // Eq. (15) with equality: the second stage fires only if the first
        // copy (if issued) has not answered by d2.
        const double suppress = 1.0 - q1 * ry.cdf(d2 - d1);
        if (suppress <= 0.0) continue;
        const double q2 =
            std::clamp(remaining / (px2 * suppress), 0.0, 1.0);
        if (q2 <= 0.0) continue;
        consider(ReissuePolicy::double_r(d1, q1, d2, q2));
      }
    }
  }
  return best;
}

MultipleRResult compute_optimal_multiple_r(
    const stats::EmpiricalCdf& rx, const stats::EmpiricalCdf& ry, double k,
    double budget, std::size_t stages, const MultipleRSearchConfig& config) {
  if (!(k > 0.0 && k < 1.0)) {
    throw std::invalid_argument("compute_optimal_multiple_r: k in (0,1)");
  }
  if (!(budget >= 0.0)) {
    throw std::invalid_argument("compute_optimal_multiple_r: budget >= 0");
  }
  if (stages == 0) {
    throw std::invalid_argument("compute_optimal_multiple_r: stages >= 1");
  }
  if (rx.empty() || ry.empty()) {
    throw std::invalid_argument("compute_optimal_multiple_r: empty log");
  }

  const auto delays = quantile_grid(rx, config.delay_grid);

  // Initialize stage 0 at the SingleR optimum (Fig. 1 scan) and leave the
  // extra stages inactive (q = 0).  Coordinate descent can then only
  // improve on the single-stage optimum, so the search is monotone in the
  // stage count by construction -- any remaining gain (Theorem 3.2 says
  // there is none) would be found by activating a later stage.
  const auto seed = compute_optimal_single_r(rx, ry, k, budget);
  std::vector<ReissueStage> current(stages);
  current[0] = ReissueStage{seed.delay, seed.probability};
  for (std::size_t i = 1; i < stages; ++i) {
    const std::size_t idx =
        delays.empty() ? 0 : std::min(delays.size() - 1,
                                      (i * delays.size()) / stages);
    current[i] = ReissueStage{delays.empty() ? rx.min() : delays[idx], 0.0};
  }

  auto evaluate = [&](const std::vector<ReissueStage>& candidate) {
    const auto policy = ReissuePolicy::multiple_r(candidate);
    return policy_tail_latency(rx, ry, policy, k);
  };
  auto spend = [&](const std::vector<ReissueStage>& candidate) {
    return policy_budget(rx, ry, ReissuePolicy::multiple_r(candidate));
  };

  double best_tail = evaluate(current);
  MultipleRResult result;

  for (int round = 0; round < config.max_rounds; ++round) {
    bool improved = false;
    for (std::size_t i = 0; i < stages; ++i) {
      ReissueStage best_stage = current[i];
      for (double d : delays) {
        for (std::size_t a = 0; a <= config.q_grid; ++a) {
          const double q = static_cast<double>(a) /
                           static_cast<double>(config.q_grid);
          std::vector<ReissueStage> candidate = current;
          candidate[i] = ReissueStage{d, q};
          if (spend(candidate) > budget + 1e-9) continue;
          const double tail = evaluate(candidate);
          if (tail < best_tail) {
            best_tail = tail;
            best_stage = ReissueStage{d, q};
            improved = true;
          }
        }
      }
      current[i] = best_stage;
    }
    result.rounds = round + 1;
    if (!improved) break;
  }

  result.policy = ReissuePolicy::multiple_r(current);
  result.tail_latency = best_tail;
  result.budget_spent = spend(current);
  return result;
}

}  // namespace reissue::core
