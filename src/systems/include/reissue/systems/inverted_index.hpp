// Inverted index over a Corpus: per-term postings (doc id, term frequency)
// in ascending doc order, document lengths, and collection statistics for
// BM25 scoring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "reissue/systems/corpus.hpp"

namespace reissue::systems {

struct Posting {
  std::uint32_t doc = 0;
  std::uint32_t tf = 0;
};

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds postings from the corpus in O(total tokens).
  explicit InvertedIndex(const Corpus& corpus);

  [[nodiscard]] std::size_t documents() const noexcept {
    return doc_lengths_.size();
  }
  [[nodiscard]] std::uint32_t vocabulary() const noexcept {
    return static_cast<std::uint32_t>(postings_.size());
  }

  /// Postings of a term (empty span for unseen/out-of-range terms).
  [[nodiscard]] std::span<const Posting> postings(std::uint32_t term) const;

  /// Document frequency: number of documents containing the term.
  [[nodiscard]] std::size_t doc_frequency(std::uint32_t term) const;

  [[nodiscard]] std::uint32_t doc_length(std::uint32_t doc) const;
  [[nodiscard]] double average_doc_length() const noexcept {
    return avg_doc_length_;
  }

  /// Total postings stored (index size proxy).
  [[nodiscard]] std::size_t total_postings() const noexcept {
    return total_postings_;
  }

 private:
  std::vector<std::vector<Posting>> postings_;
  std::vector<std::uint32_t> doc_lengths_;
  double avg_doc_length_ = 0.0;
  std::size_t total_postings_ = 0;
};

}  // namespace reissue::systems
