// Self-contained request executors for live serving: each backend owns a
// deterministically generated dataset and maps a query id to real
// (CPU-bound, read-only) work, so the loadgen harness measures genuine
// service-time distributions — the kvstore's giant-pair intersections and
// the searcher's hot-term queries produce the paper's heavy tails from
// the data shape, with no injected delays.
//
// Backends are immutable after construction; execute() only reads shared
// state, so any number of executor threads may call it concurrently.
// Query ids map onto a fixed precomputed trace via id % trace length,
// which keeps a run reproducible for a given (backend, seed, scale) and
// makes reissue copies of a query perform the identical work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace reissue::systems {

struct LiveBackendOptions {
  /// Dataset scale relative to the paper-scale defaults (1.0 = the §6.2 /
  /// §6.3 sizes: 1000 sets over [1, 10^6] / 60k docs, 30k terms).  Tests
  /// use small fractions; floors keep tiny scales non-degenerate.
  double scale = 1.0;
  std::uint64_t seed = 0x11fe;
  /// Hits returned by the search backend.
  std::size_t top_k = 10;
};

class LiveBackend {
 public:
  virtual ~LiveBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Performs the query's work and returns its operation count (the
  /// deterministic service-cost proxy).  Thread-safe: read-only against
  /// construction-time state.
  virtual std::uint64_t execute(std::uint64_t query_id) const = 0;

  /// Length of the precomputed query trace ids wrap around.
  [[nodiscard]] virtual std::size_t trace_length() const noexcept = 0;
};

/// Builds a backend by name:
///   "kvstore"  Redis-like set-intersection over the §6.2 dataset;
///   "index"    single-term postings scans (cost ~ posting length, so the
///              Zipf vocabulary yields orders-of-magnitude cost spread);
///   "search"   BM25 top-k disjunctions from the §6.3 query pool.
/// Throws std::invalid_argument for an unknown name or scale <= 0.
[[nodiscard]] std::unique_ptr<LiveBackend> make_live_backend(
    const std::string& name, const LiveBackendOptions& options = {});

/// Names accepted by make_live_backend, for CLI help/validation.
[[nodiscard]] const std::vector<std::string>& live_backend_names();

}  // namespace reissue::systems
