// Query workload for the Lucene-like substrate (paper §6.3): a fixed pool
// of distinct queries (the paper replays 10 000 nightly-regression
// queries) drawn at random per request.  Query terms follow a flattened
// Zipf over the vocabulary -- query logs are Zipfian but less skewed than
// document text -- with 1-4 terms per query.
#pragma once

#include <cstdint>
#include <vector>

#include "reissue/stats/rng.hpp"
#include "reissue/systems/searcher.hpp"

namespace reissue::systems {

struct SearchWorkloadParams {
  std::size_t distinct_queries = 10000;
  std::size_t min_terms = 1;
  std::size_t max_terms = 4;
  /// Zipf exponent for query-term popularity.
  double query_zipf_s = 1.0;
  /// Ordinary query terms come from ranks [min_rank, vocabulary): real
  /// query logs do not query stopwords, and search engines special-case
  /// them.  This keeps the bulk of the service-time distribution light
  /// (paper §6.3: ~90% of requests between 1 and 70 ms).
  std::uint32_t min_rank = 300;
  /// A small fraction of queries additionally contain one popular term
  /// from ranks [hot_min_rank, min_rank): these are the paper's rare slow
  /// searches (service times up to ~230 ms in Fig. 9) whose queueing
  /// backlogs create the latency tail that reissue policies remediate.
  double hot_query_fraction = 0.012;
  std::uint32_t hot_min_rank = 100;
  std::uint64_t seed = 0x9e4c;
};

struct SearchQuery {
  std::vector<std::uint32_t> terms;
};

/// The fixed distinct-query pool.
[[nodiscard]] std::vector<SearchQuery> make_query_pool(
    std::uint32_t vocabulary, const SearchWorkloadParams& params = {});

/// A request trace: `count` indices into the pool, uniformly random.
[[nodiscard]] std::vector<std::uint32_t> make_query_trace(
    std::size_t pool_size, std::size_t count, std::uint64_t seed = 0x7ace);

/// Executes one search per trace entry and returns per-request operation
/// counts (service-cost proxy).  Results are memoized per distinct query,
/// so the cost is O(pool) searches, not O(trace).
[[nodiscard]] std::vector<std::uint64_t> execute_search_trace(
    const Searcher& searcher, const std::vector<SearchQuery>& pool,
    const std::vector<std::uint32_t>& trace, std::size_t top_k = 10);

}  // namespace reissue::systems
