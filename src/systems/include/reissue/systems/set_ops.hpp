// Set-intersection kernels over sorted integer sets, with deterministic
// operation counting.
//
// The Redis-like substrate executes real intersections and charges service
// time proportionally to the *operations actually performed*, so the
// measured service-time distribution inherits its shape from the data
// (lognormal cardinalities -> rare giant-pair "queries of death") rather
// than from a fitted curve.  Counting operations instead of wall time
// keeps traces bit-identical across machines.
//
// Kernels:
//   intersect_probe  — iterate the smaller set, binary-search the larger
//                      (the Redis SINTER strategy: smallest set drives,
//                      membership probes into the rest); ops = comparisons.
//   intersect_merge  — linear two-pointer merge; ops = pointer advances.
//   intersect_gallop — exponential (galloping) search; asymptotically best
//                      for very skewed size ratios.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace reissue::systems {

struct IntersectResult {
  /// Number of common elements.
  std::uint64_t count = 0;
  /// Comparisons / probes performed (the service-cost proxy).
  std::uint64_t ops = 0;
};

/// Preconditions for all kernels: both inputs sorted ascending, no
/// duplicates.  Violations give undefined counts (checked in debug tests,
/// not at runtime -- these are hot paths).
[[nodiscard]] IntersectResult intersect_probe(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b);

[[nodiscard]] IntersectResult intersect_merge(std::span<const std::uint32_t> a,
                                              std::span<const std::uint32_t> b);

[[nodiscard]] IntersectResult intersect_gallop(std::span<const std::uint32_t> a,
                                               std::span<const std::uint32_t> b);

/// Materializing variant of intersect_probe used by the store API.
[[nodiscard]] std::vector<std::uint32_t> intersect_values(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b);

}  // namespace reissue::systems
