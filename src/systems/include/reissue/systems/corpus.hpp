// Synthetic document corpus for the Lucene-like search substrate.
//
// The paper's §6.3 workload searches 33M Wikipedia articles; we cannot
// ship that corpus, so we generate documents whose term statistics have
// the property that matters for service times: a Zipfian vocabulary, so
// posting-list lengths span several orders of magnitude and query cost is
// dominated by whether a query touches a hot term.  Corpus scale and the
// per-operation time constant are then calibrated so the service-time
// distribution matches the moments the paper reports (mean 39.73 ms,
// sigma 21.88 ms, ~1% of queries > 100 ms).
#pragma once

#include <cstdint>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::systems {

struct CorpusParams {
  std::size_t documents = 60000;
  std::uint32_t vocabulary = 30000;
  /// Zipf exponent for term frequency in documents.
  double zipf_s = 1.05;
  /// Document lengths ~ LogNormal(log_mu, log_sigma), clamped.
  double length_log_mu = 4.4;   // median ~81 tokens
  double length_log_sigma = 0.7;
  std::size_t min_length = 8;
  std::size_t max_length = 2000;
  std::uint64_t seed = 0xd0c5;
};

/// A document is a bag of term ids (term id = Zipf rank, 0 = hottest).
struct Corpus {
  std::vector<std::vector<std::uint32_t>> documents;
  std::uint32_t vocabulary = 0;

  [[nodiscard]] std::size_t size() const noexcept { return documents.size(); }
};

[[nodiscard]] Corpus make_corpus(const CorpusParams& params = {});

/// Zipf(s) sampler over ranks [0, n) via inverse-CDF on a precomputed
/// cumulative table: deterministic and O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);

  [[nodiscard]] std::uint32_t sample(stats::Xoshiro256& rng) const;

  /// Probability mass of rank r.
  [[nodiscard]] double pmf(std::uint32_t rank) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace reissue::systems
