// BM25 disjunctive top-k search over an InvertedIndex, with deterministic
// operation counting (postings scanned + heap operations) used as the
// service-cost proxy for the Lucene-like substrate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "reissue/systems/inverted_index.hpp"

namespace reissue::systems {

struct SearchHit {
  std::uint32_t doc = 0;
  double score = 0.0;
};

struct SearchResult {
  std::vector<SearchHit> hits;  // descending score
  /// Operations performed: postings traversed + score/heap updates.
  std::uint64_t ops = 0;
};

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

class Searcher {
 public:
  explicit Searcher(const InvertedIndex& index, Bm25Params params = {});

  /// Scores the disjunction of `terms` document-at-a-time over the merged
  /// postings and returns the top-k hits by BM25.
  [[nodiscard]] SearchResult search(std::span<const std::uint32_t> terms,
                                    std::size_t top_k = 10) const;

  [[nodiscard]] const InvertedIndex& index() const noexcept { return *index_; }

 private:
  [[nodiscard]] double idf(std::uint32_t term) const;

  const InvertedIndex* index_;
  Bm25Params params_;
};

}  // namespace reissue::systems
