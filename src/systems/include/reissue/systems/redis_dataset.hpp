// Synthetic dataset and query trace for the Redis set-intersection
// workload (paper §6.2):
//
//   * 1000 sets, each a random subset of integers in [1, 10^6];
//   * set cardinalities drawn from a lognormal distribution, so a small
//     number of sets are orders of magnitude larger than the median;
//   * the query trace is 40 000 intersections between uniformly random
//     pairs of sets.
//
// The intersect_probe kernel's cost is ~ min(|A|,|B|) * log(max), so only
// pairs of two abnormally large sets are expensive -- the paper's rare
// "queries of death" arise from the data shape, not from injected delays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reissue/stats/rng.hpp"
#include "reissue/systems/kvstore.hpp"

namespace reissue::systems {

struct RedisDatasetParams {
  std::size_t sets = 1000;
  /// Universe of member values: [1, universe].
  std::uint32_t universe = 1000000;
  /// Lognormal cardinality parameters (log-space mean / stddev).  The
  /// defaults give a median of ~660 members with ~2% of sets above ~37k,
  /// reproducing the paper's skew: >98% of queries fast, a handful of
  /// giant-pair intersections ~60x the mean cost.
  double log_mu = 6.5;
  double log_sigma = 2.0;
  std::size_t min_cardinality = 8;
  std::size_t max_cardinality = 400000;
  std::uint64_t seed = 0xbead;
};

struct RedisDataset {
  KvStore store;
  std::vector<std::string> keys;
  std::vector<std::size_t> cardinalities;
};

/// Deterministically builds the dataset.
[[nodiscard]] RedisDataset make_redis_dataset(const RedisDatasetParams& params = {});

struct IntersectQuery {
  std::uint32_t lhs = 0;  // index into RedisDataset::keys
  std::uint32_t rhs = 0;
};

/// `count` uniformly random (ordered) pairs of distinct set indices.
[[nodiscard]] std::vector<IntersectQuery> make_intersect_trace(
    std::size_t sets, std::size_t count, std::uint64_t seed = 0xcafe);

/// Executes every query in the trace against the store and returns the
/// per-query operation counts (deterministic service-cost proxy).
[[nodiscard]] std::vector<std::uint64_t> execute_intersect_trace(
    const RedisDataset& dataset, const std::vector<IntersectQuery>& trace);

}  // namespace reissue::systems
