// Bridge from the system substrates to the discrete-event cluster: execute
// the real engine work (set intersections / BM25 searches), collect
// per-query operation counts, calibrate them to a millisecond scale, and
// build a simulated 10-server cluster that replays the measured trace
// under the paper's client/reissue mechanism.
//
// Calibration: the paper's testbed fixes an ops->time constant (its CPUs);
// we fix ours by scaling operation counts so the trace mean matches the
// paper's reported mean service time (Redis 2.366 ms, Lucene 39.73 ms).
// The *shape* of the distribution -- skew, giant queries, tail mass -- is
// entirely produced by the executed work; only the unit is pinned.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "reissue/sim/cluster.hpp"
#include "reissue/systems/redis_dataset.hpp"
#include "reissue/systems/search_workload.hpp"

namespace reissue::systems {

struct ServiceTrace {
  std::vector<double> service_ms;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  /// Milliseconds charged per operation (the calibration constant).
  double ms_per_op = 0.0;
};

/// Scales raw operation counts so that mean(service_ms) == target_mean_ms.
[[nodiscard]] ServiceTrace calibrate_trace(const std::vector<std::uint64_t>& ops,
                                           double target_mean_ms);

/// Paper-reported service-time means used as calibration targets (§6.2/§6.3).
inline constexpr double kRedisMeanServiceMs = 2.366;
inline constexpr double kLuceneMeanServiceMs = 39.73;

struct SystemHarnessOptions {
  double utilization = 0.40;
  std::size_t servers = 10;
  std::size_t queries = 40000;
  std::size_t warmup = 4000;
  std::uint32_t connections = 32;
  std::uint64_t seed = 0x5eed;
};

struct SystemHarness {
  ServiceTrace trace;
  sim::Cluster cluster;
};

/// Redis-like harness: synthetic 1000-set dataset, 40k-intersection trace,
/// round-robin-connection queueing (the Redis event-loop model).
/// `dataset_params.seed` etc. may be overridden for small test builds.
[[nodiscard]] SystemHarness make_redis_harness(
    const SystemHarnessOptions& options = {},
    const RedisDatasetParams& dataset_params = {});

struct LuceneHarnessParams {
  CorpusParams corpus;
  SearchWorkloadParams workload;
  /// Per-server background CPU interference (JVM GC, OS tasks -- the
  /// paper's §1 "background tasks" tail source; its Lucene P99 of ~433 ms
  /// at 40% util is ~4x the worst service time, i.e. queueing-dominated).
  /// Episodes consume this fraction of each server's capacity...
  double interference_utilization = 0.10;
  /// ...in lognormal episodes with this mean length and log-sigma.
  double interference_mean_ms = 100.0;
  double interference_log_sigma = 0.6;
};

/// Lucene-like harness: synthetic Zipf corpus, BM25 top-k searches over a
/// 10k distinct-query pool, single-FIFO queueing per server (§6.3).
[[nodiscard]] SystemHarness make_lucene_harness(
    const SystemHarnessOptions& options = {},
    const LuceneHarnessParams& params = {});

}  // namespace reissue::systems
