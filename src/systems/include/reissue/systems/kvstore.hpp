// In-memory key-value store with sorted-set values and a set-intersection
// stored procedure -- the Redis-like substrate for the paper's §6.2
// workload ("set-intersection queries performed over a synthetic
// collection of 1000 sets").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "reissue/systems/set_ops.hpp"

namespace reissue::systems {

/// An immutable sorted set of uint32 members.
class SortedSet {
 public:
  SortedSet() = default;

  /// Sorts and dedupes `members`.
  explicit SortedSet(std::vector<std::uint32_t> members);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] bool contains(std::uint32_t value) const;
  [[nodiscard]] std::span<const std::uint32_t> values() const noexcept {
    return members_;
  }

 private:
  std::vector<std::uint32_t> members_;
};

/// String-keyed store of SortedSets with counted intersection commands.
class KvStore {
 public:
  /// Inserts or replaces a set.  Returns the previous cardinality if the
  /// key existed.
  std::optional<std::size_t> put(std::string key, SortedSet set);

  [[nodiscard]] const SortedSet* get(const std::string& key) const;
  [[nodiscard]] bool erase(const std::string& key);
  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

  /// SINTERCARD-style command: cardinality of the intersection plus the
  /// operation count (service-cost proxy).  Throws std::out_of_range if a
  /// key is missing.
  [[nodiscard]] IntersectResult intersect_count(const std::string& a,
                                                const std::string& b) const;

  /// SINTER-style command: materialized intersection.
  [[nodiscard]] std::vector<std::uint32_t> intersect(const std::string& a,
                                                     const std::string& b) const;

 private:
  std::unordered_map<std::string, SortedSet> sets_;
};

}  // namespace reissue::systems
