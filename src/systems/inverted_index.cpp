#include "reissue/systems/inverted_index.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace reissue::systems {

InvertedIndex::InvertedIndex(const Corpus& corpus) {
  postings_.resize(corpus.vocabulary);
  doc_lengths_.resize(corpus.size());

  double total_length = 0.0;
  std::unordered_map<std::uint32_t, std::uint32_t> tf;
  for (std::uint32_t doc = 0; doc < corpus.size(); ++doc) {
    const auto& terms = corpus.documents[doc];
    doc_lengths_[doc] = static_cast<std::uint32_t>(terms.size());
    total_length += static_cast<double>(terms.size());
    tf.clear();
    for (std::uint32_t term : terms) {
      if (term >= corpus.vocabulary) {
        throw std::invalid_argument("InvertedIndex: term out of vocabulary");
      }
      ++tf[term];
    }
    for (const auto& [term, count] : tf) {
      postings_[term].push_back(Posting{doc, count});
      ++total_postings_;
    }
  }
  // Docs were visited in ascending order, so each postings list is already
  // sorted by doc id; shrink to fit to keep the index compact.
  for (auto& list : postings_) list.shrink_to_fit();
  avg_doc_length_ =
      corpus.size() == 0 ? 0.0 : total_length / static_cast<double>(corpus.size());
}

std::span<const Posting> InvertedIndex::postings(std::uint32_t term) const {
  if (term >= postings_.size()) return {};
  return postings_[term];
}

std::size_t InvertedIndex::doc_frequency(std::uint32_t term) const {
  return postings(term).size();
}

std::uint32_t InvertedIndex::doc_length(std::uint32_t doc) const {
  if (doc >= doc_lengths_.size()) {
    throw std::out_of_range("InvertedIndex: doc id out of range");
  }
  return doc_lengths_[doc];
}

}  // namespace reissue::systems
