#include "reissue/systems/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "reissue/stats/distributions.hpp"

namespace reissue::systems {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n > 0");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: s > 0");
  cumulative_.resize(n);
  double total = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cumulative_[r] = total;
  }
  for (auto& c : cumulative_) c /= total;
}

std::uint32_t ZipfSampler::sample(stats::Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(cumulative_.size()) - 1));
}

double ZipfSampler::pmf(std::uint32_t rank) const {
  if (rank >= cumulative_.size()) return 0.0;
  if (rank == 0) return cumulative_[0];
  return cumulative_[rank] - cumulative_[rank - 1];
}

Corpus make_corpus(const CorpusParams& params) {
  if (params.documents == 0) {
    throw std::invalid_argument("make_corpus: documents > 0");
  }
  if (params.vocabulary == 0) {
    throw std::invalid_argument("make_corpus: vocabulary > 0");
  }
  if (params.max_length < params.min_length) {
    throw std::invalid_argument("make_corpus: max_length < min_length");
  }

  stats::Xoshiro256 root(params.seed);
  stats::Xoshiro256 length_rng = root.split(stats::stream_label("length"));
  stats::Xoshiro256 term_rng = root.split(stats::stream_label("terms"));
  const stats::LogNormal length_dist(params.length_log_mu,
                                     params.length_log_sigma);
  const ZipfSampler zipf(params.vocabulary, params.zipf_s);

  Corpus corpus;
  corpus.vocabulary = params.vocabulary;
  corpus.documents.resize(params.documents);
  for (auto& doc : corpus.documents) {
    const double raw = length_dist.sample(length_rng);
    const auto length = static_cast<std::size_t>(std::clamp(
        raw, static_cast<double>(params.min_length),
        static_cast<double>(params.max_length)));
    doc.reserve(length);
    for (std::size_t t = 0; t < length; ++t) {
      doc.push_back(zipf.sample(term_rng));
    }
  }
  return corpus;
}

}  // namespace reissue::systems
