#include "reissue/systems/kvstore.hpp"

#include <algorithm>
#include <stdexcept>

namespace reissue::systems {

SortedSet::SortedSet(std::vector<std::uint32_t> members)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool SortedSet::contains(std::uint32_t value) const {
  return std::binary_search(members_.begin(), members_.end(), value);
}

std::optional<std::size_t> KvStore::put(std::string key, SortedSet set) {
  auto it = sets_.find(key);
  if (it != sets_.end()) {
    const std::size_t previous = it->second.size();
    it->second = std::move(set);
    return previous;
  }
  sets_.emplace(std::move(key), std::move(set));
  return std::nullopt;
}

const SortedSet* KvStore::get(const std::string& key) const {
  const auto it = sets_.find(key);
  return it == sets_.end() ? nullptr : &it->second;
}

bool KvStore::erase(const std::string& key) { return sets_.erase(key) > 0; }

IntersectResult KvStore::intersect_count(const std::string& a,
                                         const std::string& b) const {
  const SortedSet* sa = get(a);
  const SortedSet* sb = get(b);
  if (sa == nullptr) throw std::out_of_range("KvStore: missing key " + a);
  if (sb == nullptr) throw std::out_of_range("KvStore: missing key " + b);
  return intersect_probe(sa->values(), sb->values());
}

std::vector<std::uint32_t> KvStore::intersect(const std::string& a,
                                              const std::string& b) const {
  const SortedSet* sa = get(a);
  const SortedSet* sb = get(b);
  if (sa == nullptr) throw std::out_of_range("KvStore: missing key " + a);
  if (sb == nullptr) throw std::out_of_range("KvStore: missing key " + b);
  return intersect_values(sa->values(), sb->values());
}

}  // namespace reissue::systems
