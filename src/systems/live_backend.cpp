#include "reissue/systems/live_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "reissue/systems/redis_dataset.hpp"
#include "reissue/systems/search_workload.hpp"
#include "reissue/systems/searcher.hpp"

namespace reissue::systems {

namespace {

std::size_t scaled(double base, double scale, std::size_t floor_value) {
  return std::max<std::size_t>(floor_value,
                               static_cast<std::size_t>(base * scale));
}

class KvStoreBackend final : public LiveBackend {
 public:
  explicit KvStoreBackend(const LiveBackendOptions& options) {
    RedisDatasetParams params;
    params.sets = scaled(1000, options.scale, 16);
    params.universe = static_cast<std::uint32_t>(
        scaled(1000000, options.scale, 2000));
    params.max_cardinality = scaled(400000, options.scale, 500);
    params.seed = options.seed;
    dataset_ = make_redis_dataset(params);
    trace_ = make_intersect_trace(params.sets, scaled(40000, options.scale, 256),
                                  options.seed ^ 0xcafe);
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "kvstore";
  }

  std::uint64_t execute(std::uint64_t query_id) const override {
    const IntersectQuery& q = trace_[query_id % trace_.size()];
    return dataset_.store
        .intersect_count(dataset_.keys[q.lhs], dataset_.keys[q.rhs])
        .ops;
  }

  [[nodiscard]] std::size_t trace_length() const noexcept override {
    return trace_.size();
  }

 private:
  RedisDataset dataset_;
  std::vector<IntersectQuery> trace_;
};

class IndexBackend final : public LiveBackend {
 public:
  explicit IndexBackend(const LiveBackendOptions& options) {
    CorpusParams params;
    params.documents = scaled(60000, options.scale, 500);
    params.vocabulary = static_cast<std::uint32_t>(
        scaled(30000, options.scale, 500));
    params.seed = options.seed;
    index_ = InvertedIndex(make_corpus(params));
    // One term per request, Zipf-weighted like document text: most scans
    // touch short postings, a few hit the hottest terms' giant lists.
    ZipfSampler sampler(index_.vocabulary(), 1.05);
    stats::Xoshiro256 rng(options.seed ^ 0x1d);
    const std::size_t n = scaled(40000, options.scale, 256);
    trace_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) trace_.push_back(sampler.sample(rng));
  }

  [[nodiscard]] const char* name() const noexcept override { return "index"; }

  std::uint64_t execute(std::uint64_t query_id) const override {
    const std::uint32_t term = trace_[query_id % trace_.size()];
    std::uint64_t sum = 0;
    for (const Posting& p : index_.postings(term)) sum += p.tf;
    return sum + index_.doc_frequency(term);
  }

  [[nodiscard]] std::size_t trace_length() const noexcept override {
    return trace_.size();
  }

 private:
  InvertedIndex index_;
  std::vector<std::uint32_t> trace_;
};

class SearchBackend final : public LiveBackend {
 public:
  explicit SearchBackend(const LiveBackendOptions& options)
      : top_k_(options.top_k) {
    CorpusParams corpus_params;
    corpus_params.documents = scaled(60000, options.scale, 500);
    corpus_params.vocabulary = static_cast<std::uint32_t>(
        scaled(30000, options.scale, 500));
    corpus_params.seed = options.seed;
    const Corpus corpus = make_corpus(corpus_params);
    index_ = InvertedIndex(corpus);
    searcher_ = std::make_unique<Searcher>(index_);
    SearchWorkloadParams workload;
    workload.distinct_queries = scaled(10000, options.scale, 64);
    // Keep ordinary-term ranks inside small test vocabularies.
    workload.min_rank =
        std::min<std::uint32_t>(workload.min_rank, index_.vocabulary() / 4);
    workload.hot_min_rank =
        std::min<std::uint32_t>(workload.hot_min_rank, workload.min_rank / 2);
    workload.seed = options.seed ^ 0x5ea;
    pool_ = make_query_pool(index_.vocabulary(), workload);
    trace_ = make_query_trace(pool_.size(), scaled(40000, options.scale, 256),
                              options.seed ^ 0x7ace);
  }

  [[nodiscard]] const char* name() const noexcept override { return "search"; }

  std::uint64_t execute(std::uint64_t query_id) const override {
    const SearchQuery& q = pool_[trace_[query_id % trace_.size()]];
    return searcher_->search(q.terms, top_k_).ops;
  }

  [[nodiscard]] std::size_t trace_length() const noexcept override {
    return trace_.size();
  }

 private:
  std::size_t top_k_;
  InvertedIndex index_;
  std::unique_ptr<Searcher> searcher_;
  std::vector<SearchQuery> pool_;
  std::vector<std::uint32_t> trace_;
};

}  // namespace

std::unique_ptr<LiveBackend> make_live_backend(
    const std::string& name, const LiveBackendOptions& options) {
  if (!(options.scale > 0.0)) {
    throw std::invalid_argument("make_live_backend: scale must be > 0");
  }
  if (name == "kvstore") return std::make_unique<KvStoreBackend>(options);
  if (name == "index") return std::make_unique<IndexBackend>(options);
  if (name == "search") return std::make_unique<SearchBackend>(options);
  throw std::invalid_argument("make_live_backend: unknown backend '" + name +
                              "' (expected kvstore|index|search)");
}

const std::vector<std::string>& live_backend_names() {
  static const std::vector<std::string> names = {"kvstore", "index", "search"};
  return names;
}

}  // namespace reissue::systems
