#include "reissue/systems/bridge.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace reissue::systems {

ServiceTrace calibrate_trace(const std::vector<std::uint64_t>& ops,
                             double target_mean_ms) {
  if (ops.empty()) throw std::invalid_argument("calibrate_trace: empty ops");
  if (!(target_mean_ms > 0.0)) {
    throw std::invalid_argument("calibrate_trace: target mean must be > 0");
  }
  double mean_ops = 0.0;
  for (std::uint64_t o : ops) mean_ops += static_cast<double>(o);
  mean_ops /= static_cast<double>(ops.size());
  if (!(mean_ops > 0.0)) {
    throw std::invalid_argument("calibrate_trace: all-zero ops");
  }

  ServiceTrace trace;
  trace.ms_per_op = target_mean_ms / mean_ops;
  trace.service_ms.reserve(ops.size());
  for (std::uint64_t o : ops) {
    trace.service_ms.push_back(static_cast<double>(o) * trace.ms_per_op);
  }
  trace.mean_ms = target_mean_ms;
  double ss = 0.0;
  for (double v : trace.service_ms) {
    ss += (v - target_mean_ms) * (v - target_mean_ms);
  }
  trace.stddev_ms =
      std::sqrt(ss / static_cast<double>(trace.service_ms.size()));
  return trace;
}

namespace {

sim::Cluster build_cluster(ServiceTrace& trace,
                           const SystemHarnessOptions& options,
                           sim::QueueDisciplineKind queue) {
  sim::ClusterConfig config;
  config.servers = options.servers;
  config.queries = options.queries;
  config.warmup = options.warmup;
  config.connections = options.connections;
  config.queue = queue;
  config.load_balancer = sim::LoadBalancerKind::kRandom;
  config.seed = options.seed;
  config.arrival_rate = sim::arrival_rate_for_utilization(
      options.utilization, options.servers, trace.mean_ms);
  return sim::Cluster(config, sim::make_trace_service(trace.service_ms));
}

}  // namespace

SystemHarness make_redis_harness(const SystemHarnessOptions& options,
                                 const RedisDatasetParams& dataset_params) {
  const RedisDataset dataset = make_redis_dataset(dataset_params);
  const auto queries = make_intersect_trace(
      dataset.keys.size(), options.queries, dataset_params.seed ^ 0x7ace);
  const auto ops = execute_intersect_trace(dataset, queries);
  ServiceTrace trace = calibrate_trace(ops, kRedisMeanServiceMs);
  // §6.2: Redis services "requests in a round-robin fashion from each
  // active client connection in a batch" -- exhaustive per-connection
  // batches, which is what lets one giant intersection stall every
  // connection for multiple rounds.
  sim::Cluster cluster = build_cluster(
      trace, options, sim::QueueDisciplineKind::kConnectionBatch);
  return SystemHarness{std::move(trace), std::move(cluster)};
}

SystemHarness make_lucene_harness(const SystemHarnessOptions& options,
                                  const LuceneHarnessParams& params) {
  const Corpus corpus = make_corpus(params.corpus);
  const InvertedIndex index(corpus);
  const Searcher searcher(index);
  const auto pool = make_query_pool(corpus.vocabulary, params.workload);
  const auto trace_idx = make_query_trace(pool.size(), options.queries,
                                          params.workload.seed ^ 0x7ace);
  const auto ops = execute_search_trace(searcher, pool, trace_idx);
  ServiceTrace trace = calibrate_trace(ops, kLuceneMeanServiceMs);
  // The paper measures CPU utilization with sysstat, which counts
  // background work too: the requested utilization is the TOTAL, so the
  // query arrival rate targets (utilization - interference share).
  SystemHarnessOptions query_options = options;
  query_options.utilization = std::max(
      options.utilization - params.interference_utilization, 0.05);
  sim::Cluster cluster =
      build_cluster(trace, query_options, sim::QueueDisciplineKind::kFifo);
  if (params.interference_utilization > 0.0) {
    auto& config = cluster.mutable_config();
    config.interference_rate =
        params.interference_utilization / params.interference_mean_ms;
    const double sigma = params.interference_log_sigma;
    // LogNormal(mu, sigma) with mean interference_mean_ms.
    config.interference_duration = stats::make_lognormal(
        std::log(params.interference_mean_ms) - 0.5 * sigma * sigma, sigma);
  }
  return SystemHarness{std::move(trace), std::move(cluster)};
}

}  // namespace reissue::systems
