#include "reissue/systems/searcher.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace reissue::systems {

Searcher::Searcher(const InvertedIndex& index, Bm25Params params)
    : index_(&index), params_(params) {
  if (!(params.k1 > 0.0) || !(params.b >= 0.0 && params.b <= 1.0)) {
    throw std::invalid_argument("Searcher: invalid BM25 parameters");
  }
}

double Searcher::idf(std::uint32_t term) const {
  const auto df = static_cast<double>(index_->doc_frequency(term));
  const auto n = static_cast<double>(index_->documents());
  // Lucene-style BM25 idf, always positive.
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

SearchResult Searcher::search(std::span<const std::uint32_t> terms,
                              std::size_t top_k) const {
  SearchResult result;
  if (terms.empty() || top_k == 0) return result;

  struct Cursor {
    std::span<const Posting> list;
    std::size_t pos = 0;
    double idf = 0.0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(terms.size());
  for (std::uint32_t term : terms) {
    auto list = index_->postings(term);
    if (!list.empty()) {
      cursors.push_back(Cursor{list, 0, idf(term)});
    }
  }
  if (cursors.empty()) return result;

  const double avg_len = std::max(index_->average_doc_length(), 1.0);

  // Document-at-a-time merge: repeatedly score the smallest current doc id
  // across cursors.  A min-heap over (doc, cursor) orders the frontier.
  using Frontier = std::pair<std::uint32_t, std::size_t>;  // (doc, cursor)
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> frontier;
  for (std::size_t c = 0; c < cursors.size(); ++c) {
    frontier.emplace(cursors[c].list[0].doc, c);
  }

  // Min-heap of the current top-k by score.
  std::priority_queue<std::pair<double, std::uint32_t>,
                      std::vector<std::pair<double, std::uint32_t>>,
                      std::greater<>>
      best;

  while (!frontier.empty()) {
    const std::uint32_t doc = frontier.top().first;
    double score = 0.0;
    while (!frontier.empty() && frontier.top().first == doc) {
      const std::size_t c = frontier.top().second;
      frontier.pop();
      Cursor& cursor = cursors[c];
      const Posting& posting = cursor.list[cursor.pos];
      const double tf = static_cast<double>(posting.tf);
      const double len_norm =
          params_.k1 * (1.0 - params_.b +
                        params_.b * static_cast<double>(
                                        index_->doc_length(doc)) /
                            avg_len);
      score += cursor.idf * tf * (params_.k1 + 1.0) / (tf + len_norm);
      ++result.ops;  // one posting consumed
      if (++cursor.pos < cursor.list.size()) {
        frontier.emplace(cursor.list[cursor.pos].doc, c);
      }
    }
    ++result.ops;  // per-document score finalization
    if (best.size() < top_k) {
      best.emplace(score, doc);
    } else if (score > best.top().first) {
      best.pop();
      best.emplace(score, doc);
    }
  }

  result.hits.reserve(best.size());
  while (!best.empty()) {
    result.hits.push_back(SearchHit{best.top().second, best.top().first});
    best.pop();
  }
  std::reverse(result.hits.begin(), result.hits.end());
  return result;
}

}  // namespace reissue::systems
