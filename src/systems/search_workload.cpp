#include "reissue/systems/search_workload.hpp"

#include <stdexcept>

#include "reissue/systems/corpus.hpp"

namespace reissue::systems {

std::vector<SearchQuery> make_query_pool(std::uint32_t vocabulary,
                                         const SearchWorkloadParams& params) {
  if (params.distinct_queries == 0) {
    throw std::invalid_argument("make_query_pool: distinct_queries > 0");
  }
  if (params.min_terms == 0 || params.max_terms < params.min_terms) {
    throw std::invalid_argument("make_query_pool: bad term-count range");
  }
  if (params.min_rank >= vocabulary) {
    throw std::invalid_argument("make_query_pool: min_rank >= vocabulary");
  }
  if (params.hot_min_rank >= params.min_rank) {
    throw std::invalid_argument("make_query_pool: hot_min_rank >= min_rank");
  }
  if (!(params.hot_query_fraction >= 0.0 && params.hot_query_fraction <= 1.0)) {
    throw std::invalid_argument("make_query_pool: hot_query_fraction in [0,1]");
  }
  stats::Xoshiro256 rng(params.seed);
  const ZipfSampler zipf(vocabulary - params.min_rank, params.query_zipf_s);
  const ZipfSampler hot_zipf(params.min_rank - params.hot_min_rank,
                             params.query_zipf_s);

  std::vector<SearchQuery> pool;
  pool.reserve(params.distinct_queries);
  const std::size_t spread = params.max_terms - params.min_terms + 1;
  for (std::size_t i = 0; i < params.distinct_queries; ++i) {
    SearchQuery query;
    const std::size_t terms = params.min_terms + rng.below(spread);
    query.terms.reserve(terms + 1);
    for (std::size_t t = 0; t < terms; ++t) {
      query.terms.push_back(params.min_rank + zipf.sample(rng));
    }
    if (rng.bernoulli(params.hot_query_fraction)) {
      query.terms.push_back(params.hot_min_rank + hot_zipf.sample(rng));
    }
    pool.push_back(std::move(query));
  }
  return pool;
}

std::vector<std::uint32_t> make_query_trace(std::size_t pool_size,
                                            std::size_t count,
                                            std::uint64_t seed) {
  if (pool_size == 0) {
    throw std::invalid_argument("make_query_trace: pool_size > 0");
  }
  stats::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.push_back(static_cast<std::uint32_t>(rng.below(pool_size)));
  }
  return trace;
}

std::vector<std::uint64_t> execute_search_trace(
    const Searcher& searcher, const std::vector<SearchQuery>& pool,
    const std::vector<std::uint32_t>& trace, std::size_t top_k) {
  // Memoize per distinct query; identical requests cost identical work.
  std::vector<std::int64_t> memo(pool.size(), -1);
  std::vector<std::uint64_t> ops;
  ops.reserve(trace.size());
  for (std::uint32_t idx : trace) {
    if (idx >= pool.size()) {
      throw std::out_of_range("execute_search_trace: trace index");
    }
    if (memo[idx] < 0) {
      const SearchResult result = searcher.search(pool[idx].terms, top_k);
      // Fixed parse/setup cost plus scoring work.
      memo[idx] = static_cast<std::int64_t>(256 + result.ops);
    }
    ops.push_back(static_cast<std::uint64_t>(memo[idx]));
  }
  return ops;
}

}  // namespace reissue::systems
