#include "reissue/systems/redis_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "reissue/stats/distributions.hpp"

namespace reissue::systems {

namespace {

/// Samples `k` distinct uint32 values in [1, universe] (Floyd's algorithm:
/// O(k) expected, no O(universe) allocation).
std::vector<std::uint32_t> sample_distinct(std::uint32_t universe,
                                           std::size_t k,
                                           stats::Xoshiro256& rng) {
  if (k > universe) {
    throw std::invalid_argument("sample_distinct: k exceeds universe");
  }
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = universe - static_cast<std::uint32_t>(k) + 1;
       j <= universe; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.below(j)) + 1;
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace

RedisDataset make_redis_dataset(const RedisDatasetParams& params) {
  if (params.sets == 0) {
    throw std::invalid_argument("make_redis_dataset: sets > 0");
  }
  if (params.max_cardinality < params.min_cardinality) {
    throw std::invalid_argument("make_redis_dataset: max < min cardinality");
  }
  if (params.max_cardinality > params.universe) {
    throw std::invalid_argument("make_redis_dataset: max cardinality > universe");
  }

  stats::Xoshiro256 root(params.seed);
  stats::Xoshiro256 size_rng = root.split(stats::stream_label("cardinality"));
  stats::Xoshiro256 member_rng = root.split(stats::stream_label("members"));
  const stats::LogNormal cardinality_dist(params.log_mu, params.log_sigma);

  RedisDataset dataset;
  dataset.keys.reserve(params.sets);
  dataset.cardinalities.reserve(params.sets);
  for (std::size_t i = 0; i < params.sets; ++i) {
    const double raw = cardinality_dist.sample(size_rng);
    const auto k = static_cast<std::size_t>(std::clamp(
        raw, static_cast<double>(params.min_cardinality),
        static_cast<double>(params.max_cardinality)));
    std::string key = "set:" + std::to_string(i);
    dataset.store.put(key, SortedSet(sample_distinct(params.universe, k,
                                                     member_rng)));
    dataset.cardinalities.push_back(k);
    dataset.keys.push_back(std::move(key));
  }
  return dataset;
}

std::vector<IntersectQuery> make_intersect_trace(std::size_t sets,
                                                 std::size_t count,
                                                 std::uint64_t seed) {
  if (sets < 2) {
    throw std::invalid_argument("make_intersect_trace: need >= 2 sets");
  }
  stats::Xoshiro256 rng(seed);
  std::vector<IntersectQuery> trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto lhs = static_cast<std::uint32_t>(rng.below(sets));
    auto rhs = static_cast<std::uint32_t>(rng.below(sets - 1));
    if (rhs >= lhs) ++rhs;
    trace.push_back(IntersectQuery{lhs, rhs});
  }
  return trace;
}

std::vector<std::uint64_t> execute_intersect_trace(
    const RedisDataset& dataset, const std::vector<IntersectQuery>& trace) {
  std::vector<std::uint64_t> ops;
  ops.reserve(trace.size());
  for (const auto& query : trace) {
    const auto result = dataset.store.intersect_count(
        dataset.keys.at(query.lhs), dataset.keys.at(query.rhs));
    // Charge a small fixed parse/dispatch cost plus the probe work.
    ops.push_back(64 + result.ops);
  }
  return ops;
}

}  // namespace reissue::systems
