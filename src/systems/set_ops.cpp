#include "reissue/systems/set_ops.hpp"

#include <algorithm>

namespace reissue::systems {

namespace {

/// Binary search for `key` in sorted `data`, counting comparisons into
/// `ops`.  Returns true if found.
bool counted_bsearch(std::span<const std::uint32_t> data, std::uint32_t key,
                     std::uint64_t& ops) {
  std::size_t lo = 0;
  std::size_t hi = data.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++ops;
    if (data[mid] < key) {
      lo = mid + 1;
    } else if (data[mid] > key) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

/// Galloping (exponential) search: find the first index >= key starting
/// from `hint`, counting comparisons.
std::size_t counted_gallop(std::span<const std::uint32_t> data,
                           std::size_t hint, std::uint32_t key,
                           std::uint64_t& ops) {
  std::size_t step = 1;
  std::size_t lo = hint;
  std::size_t hi = hint;
  while (hi < data.size()) {
    ++ops;
    if (data[hi] >= key) break;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, data.size());
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++ops;
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

IntersectResult intersect_probe(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  IntersectResult result;
  for (std::uint32_t key : a) {
    if (counted_bsearch(b, key, result.ops)) ++result.count;
  }
  return result;
}

IntersectResult intersect_merge(std::span<const std::uint32_t> a,
                                std::span<const std::uint32_t> b) {
  IntersectResult result;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++result.ops;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++result.count;
      ++i;
      ++j;
    }
  }
  return result;
}

IntersectResult intersect_gallop(std::span<const std::uint32_t> a,
                                 std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  IntersectResult result;
  std::size_t pos = 0;
  for (std::uint32_t key : a) {
    pos = counted_gallop(b, pos, key, result.ops);
    if (pos >= b.size()) break;
    if (b[pos] == key) {
      ++result.count;
      ++pos;
    }
  }
  return result;
}

std::vector<std::uint32_t> intersect_values(std::span<const std::uint32_t> a,
                                            std::span<const std::uint32_t> b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::uint32_t> out;
  std::uint64_t ops = 0;
  for (std::uint32_t key : a) {
    if (counted_bsearch(b, key, ops)) out.push_back(key);
  }
  return out;
}

}  // namespace reissue::systems
