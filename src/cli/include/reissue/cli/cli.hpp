// Command-line front end for operators: optimize policies from latency
// logs, and tune/evaluate policies on the built-in workloads without
// writing C++.  The command logic is a library (driven by the test suite
// and by tools/reissue_cli.cpp's thin main).
//
// Commands:
//   optimize  --log FILE [--reissue-log FILE] [--pairs FILE]
//             [--percentile K] [--budget B]
//       Computes the optimal SingleR policy from response-time logs
//       (one latency per line; --pairs takes "primary reissue" rows and
//       switches to the §4.2 correlation-aware optimizer).
//
//   tune      --workload independent|correlated|queueing|redis|lucene
//             [--utilization U] [--percentile K] [--budget B]
//             [--trials N] [--queries N] [--seed S]
//       Runs the §4.3 adaptive optimizer on a built-in workload and
//       reports the tuned policy and measured tail.
//
//   evaluate  --workload ... --policy "SingleR d=12.5 q=0.4"
//             [--utilization U] [--percentile K] [--queries N] [--seed S]
//       Evaluates a fixed policy on a built-in workload.
//
//   sweep     --scenarios NAME[,NAME...] | --spec "name=... kind=..."
//             [--replications N] [--threads N] [--seed S] [--percentile K]
//             [--output FILE] | --list
//             [--shard i/N --raw-output FILE [--journal FILE] [--max-cells N]]
//       Runs the parallel experiment engine over registry scenarios /
//       catalogs (or an inline spec) with deterministic per-replication
//       seed substreams, and emits per-cell CSV with tail + 95% CI
//       columns.  Output is bit-identical for any --threads value.
//       With --shard i/N --raw-output FILE, runs only that slice of the
//       sweep's canonical cell plan (src/dist) and emits replication-level
//       raw CSV plus a manifest, checkpointing completed cells to a
//       journal so a killed shard resumes without recomputation.
//
//   merge     --inputs FILE[,FILE...] [--output FILE]
//       Validates the shards' manifests (same sweep, complete and disjoint
//       shard set, intact file hashes), reassembles the cells in canonical
//       order and aggregates them: the merged CSV is byte-identical to
//       `sweep` run in one process with any thread count.
//
//   help
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace reissue::cli {

/// Executes a CLI invocation.  `args` excludes the program name.
/// Returns the process exit code (0 on success); all human output goes to
/// `out`, diagnostics to `err`.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Parsed key-value flags ("--key value"; bare "--flag" gets value "").
/// Exposed for tests.
struct ParsedArgs {
  std::string command;
  std::vector<std::pair<std::string, std::string>> flags;

  /// Last value of --name, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] bool has(const std::string& name) const;
};

/// Parses raw arguments.  Throws std::runtime_error on a malformed flag
/// (missing value, flag before command).
[[nodiscard]] ParsedArgs parse_args(const std::vector<std::string>& args);

}  // namespace reissue::cli
