#include "reissue/cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "reissue/core/adaptive.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/core/policy_io.hpp"
#include "reissue/dist/io.hpp"
#include "reissue/dist/merge.hpp"
#include "reissue/dist/shard.hpp"
#include "reissue/dist/worker.hpp"
#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/registry.hpp"
#include "reissue/exp/runner.hpp"
#include "reissue/obs/counters.hpp"
#include "reissue/obs/runtime_metrics.hpp"
#include "reissue/obs/runtime_timeseries.hpp"
#include "reissue/obs/runtime_trace.hpp"
#include "reissue/obs/timeseries.hpp"
#include "reissue/obs/trace.hpp"
#include "reissue/obs/trace_ring.hpp"
#include "reissue/runtime/clock.hpp"
#include "reissue/runtime/executor.hpp"
#include "reissue/runtime/reissue_client.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/summary.hpp"
#include "reissue/systems/bridge.hpp"
#include "reissue/systems/live_backend.hpp"

namespace reissue::cli {

namespace {

constexpr const char* kUsage = R"(reissue_cli -- optimal reissue policies (SPAA'17 reproduction)

usage:
  reissue_cli optimize --log FILE [--reissue-log FILE] [--pairs FILE]
                       [--percentile K=0.99] [--budget B=0.02]
  reissue_cli tune     --workload independent|correlated|queueing|redis|lucene
                       [--utilization U=0.3] [--percentile K=0.99]
                       [--budget B=0.02] [--trials N=6] [--queries N=40000]
                       [--seed S]
  reissue_cli evaluate --workload ... --policy "SingleR d=12.5 q=0.4"
                       [--utilization U=0.3] [--percentile K=0.99]
                       [--queries N=40000] [--seed S]
  reissue_cli sweep    --scenarios NAME[,NAME...] | --spec "name=... kind=..."
                       [--policies SPEC[,SPEC...]] [--replications N=8]
                       [--threads N=1] [--seed S] [--percentile K]
                       [--queries N] [--warmup N]
                       [--metric-mode completion|replay|full] [--full-logs]
                       [--output FILE] [--stats] [--progress]
                       [--trace FILE] [--trace-bin FILE [--trace-capacity N]]
                       [--timeseries FILE --window W]
                       [--shard i/N --raw-output FILE [--journal FILE]
                        [--max-cells N]]
  reissue_cli sweep --list
  reissue_cli merge    --inputs FILE[,FILE...] [--output FILE]
  reissue_cli trace-summarize --input FILE
  reissue_cli loadgen  --backend kvstore|index|search --rate R
                       [--duration S=5 | --requests N] [--policy SPEC=none]
                       [--workers N=cores] [--scale X=1.0] [--seed S]
                       [--ring-capacity N=1048576] [--percentile K=0.99]
                       [--timeseries FILE [--window MS=1000]]
                       [--trace-bin FILE [--trace-capacity N=1048576]]
                       [--metrics-out FILE] [--latency-log FILE]
  reissue_cli help

policy specs (scenario policy= tokens and --policies entries):
  none | immediate[:copies] | d:<delay> | r:<delay>:<prob>
  | multi:d1:q1[:d2:q2...] | tuned-r:<budget>[:trials]
  | tuned-d:<budget>[:trials] | optimal:<budget>[:corr][:train=N]
  | optimal-d:<budget>[:train=N]
optimal:* runs the paper's data-driven optimizer per replication: a
training run on the replication's own seed substream feeds the section 4.1
scan (":corr": the section 4.2 correlation-aware variant; optimal-d: the
Eq. (2) deadline policy), and the chosen (d, q) is then measured.

fault & arrival spec keys (queueing scenarios):
  faults=CLAUSE[+CLAUSE...]   seeded fault plan; one clause per family:
    slowdown:<rate>,<factor>,<mean>    transient per-server slowdowns
    corr:<k>,<rate>,<mean>[,<factor>]  correlated k-server degradation
    crash:<mtbf>,<mttr>                crash + recovery (failed primary
                                       copies retried, reissues abandoned)
  arrival=diurnal:<period>:<amplitude>[:<steps>]  sinusoidal load curve
  arrival=trace:<file>        replay recorded arrival timestamps (one per
                              line, non-decreasing; replaces util=)
  fanout=<n>:<k>[:spread|:ec] k-of-n sibling groups: every query fans to
                              n copies at arrival and completes at the
                              k-th response; :spread places copies on
                              distinct servers, :ec also scales each
                              copy's service by 1/k (erasure-coded read);
                              reissue policies stack on top of the group
all fault/arrival/fanout events use dedicated seed substreams, so
thread-count and shard-merge byte-identity hold (see the fault-matrix
and fanout-matrix catalogs).

metric modes (--metric-mode, default completion):
  completion  streaming accumulators fed in completion order from inside
              the event loop (fastest; histogram tail / counts / rates
              bit-identical to replay, P2 column differs deterministically)
  replay      streaming accumulators fed in query-id order via the
              end-of-run replay pass (the golden-pinned reference)
  full        exact sorted-log percentiles from materialized logs
              (--full-logs is the legacy spelling)

observability (passive: never changes sweep output):
  --trace FILE       Chrome trace-event JSON (Perfetto / chrome://tracing);
                     requires --threads 1
  --trace-bin FILE   compact binary event ring (read with trace-summarize);
                     requires --threads 1; --trace-capacity sets the ring
                     size in events (default 1048576, overwrite-oldest)
  --timeseries FILE  windowed time-series CSV; requires --threads 1 and
                     --window W (simulated-time window width)
  --stats            run counters + wall-clock phase timers on stderr,
                     plus one per-cell counter line (heap/scan pops, stage
                     checks/retired) as each cell completes
                     (shard mode: per-cell timings side file instead)
  --progress         per-cell progress + ETA on stderr

live serving (loadgen): open-loop Poisson arrivals at --rate queries/sec
against a real in-process backend (kvstore set intersections, inverted-
index postings scans, BM25 search) executed on a thread pool, with
reissue copies driven by --policy (fixed specs only: none | immediate
| d: | r: | multi:).  Outputs:
  --timeseries FILE  wall-clock windowed CSV, same tidy schema as sweep
                     (--window here is in milliseconds)
  --trace-bin FILE   binary event ring readable by trace-summarize
  --metrics-out FILE Prometheus text exposition, atomically rewritten
                     every window
  --latency-log FILE drained per-request latency samples in the core
                     latency-log format (optimizer training input)
)";

double parse_double(const ParsedArgs& args, const std::string& name,
                    double fallback) {
  const std::string raw = args.get(name);
  if (raw.empty()) return fallback;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error("--" + name + ": not a number: " + raw);
  }
  if (consumed != raw.size()) {
    throw std::runtime_error("--" + name + ": not a number: " + raw);
  }
  return value;
}

/// `base` 10 for counts; seeds pass 0 so 0x... hex is accepted.  Base 10
/// for everything else keeps zero-padded decimals ("0100") from silently
/// parsing as octal.
std::uint64_t parse_u64(const ParsedArgs& args, const std::string& name,
                        std::uint64_t fallback, int base = 10) {
  const std::string raw = args.get(name);
  if (raw.empty()) return fallback;
  if (raw[0] == '-') {  // stoull would silently wrap negatives
    throw std::runtime_error("--" + name + ": must be non-negative: " + raw);
  }
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(raw, &consumed, base);
  } catch (const std::exception&) {
    throw std::runtime_error("--" + name + ": not an integer: " + raw);
  }
  if (consumed != raw.size()) {
    throw std::runtime_error("--" + name + ": not an integer: " + raw);
  }
  return value;
}

std::uint64_t parse_seed(const ParsedArgs& args, std::uint64_t fallback) {
  return parse_u64(args, "seed", fallback, 0);  // base 0: accepts 0x...
}

/// Value of a flag the command cannot run without: distinguishes "flag
/// missing" from "flag given without a value" in the diagnostic.
std::string require_value(const ParsedArgs& args, const std::string& name,
                          const std::string& command) {
  if (!args.has(name)) {
    throw std::runtime_error(command + " requires --" + name);
  }
  const std::string value = args.get(name);
  if (value.empty()) {
    throw std::runtime_error("--" + name + " requires a value");
  }
  return value;
}

/// Splits a comma-separated flag value, dropping empty entries.
std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= list.size()) {
    const auto pos = list.find(',', start);
    const std::string entry =
        list.substr(start, pos == std::string::npos ? pos : pos - start);
    if (!entry.empty()) parts.push_back(entry);
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

std::vector<double> load_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  auto samples = core::read_latency_log(in);
  if (samples.empty()) throw std::runtime_error("empty log file: " + path);
  return samples;
}

std::vector<std::pair<double, double>> load_pairs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open pairs file: " + path);
  std::vector<std::pair<double, double>> pairs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream row(line);
    double x = 0.0;
    double y = 0.0;
    if (!(row >> x)) continue;  // blank line
    if (!(row >> y) || x < 0.0 || y < 0.0) {
      throw std::runtime_error("pairs file line " + std::to_string(lineno) +
                               ": expected two non-negative numbers");
    }
    pairs.emplace_back(x, y);
  }
  if (pairs.empty()) throw std::runtime_error("empty pairs file: " + path);
  return pairs;
}

/// Builds one of the built-in workloads as a SystemUnderTest.
std::unique_ptr<core::SystemUnderTest> make_workload(const ParsedArgs& args,
                                                     const std::string& command) {
  const std::string name = require_value(args, "workload", command);
  const double utilization = parse_double(args, "utilization", 0.30);
  const auto queries =
      static_cast<std::size_t>(parse_u64(args, "queries", 40000));
  const std::uint64_t seed = parse_seed(args, 0x5eed);

  if (name == "independent" || name == "correlated" || name == "queueing") {
    sim::workloads::WorkloadOptions opts;
    opts.queries = queries;
    opts.warmup = queries / 10;
    opts.seed = seed;
    if (name == "independent") {
      return std::make_unique<sim::Cluster>(
          sim::workloads::make_independent(opts));
    }
    if (name == "correlated") {
      return std::make_unique<sim::Cluster>(
          sim::workloads::make_correlated(0.5, opts));
    }
    return std::make_unique<sim::Cluster>(
        sim::workloads::make_queueing(utilization, 0.5, opts));
  }
  if (name == "redis" || name == "lucene") {
    systems::SystemHarnessOptions options;
    options.utilization = utilization;
    options.queries = queries;
    options.warmup = queries / 10;
    options.seed = seed;
    auto harness = name == "redis" ? systems::make_redis_harness(options)
                                   : systems::make_lucene_harness(options);
    return std::make_unique<sim::Cluster>(std::move(harness.cluster));
  }
  throw std::runtime_error(
      "--workload must be independent|correlated|queueing|redis|lucene "
      "(got '" + name + "')");
}

int cmd_optimize(const ParsedArgs& args, std::ostream& out) {
  const std::string log_path = require_value(args, "log", "optimize");
  const double k = parse_double(args, "percentile", 0.99);
  const double budget = parse_double(args, "budget", 0.02);

  const stats::EmpiricalCdf rx(load_log(log_path));
  core::OptimizerResult result;
  if (args.has("pairs")) {
    const stats::JointSamples joint(load_pairs(args.get("pairs")));
    result = core::compute_optimal_single_r_correlated(rx, joint, k, budget);
  } else {
    const stats::EmpiricalCdf ry = args.has("reissue-log")
                                       ? stats::EmpiricalCdf(load_log(
                                             args.get("reissue-log")))
                                       : rx;
    result = core::compute_optimal_single_r(rx, ry, k, budget);
  }

  out << "samples:        " << rx.size() << "\n";
  out << "baseline P" << k * 100 << ":  " << rx.quantile(k) << "\n";
  out << "policy:         "
      << core::policy_to_line(result.policy()) << "\n";
  out << "predicted tail: " << result.predicted_tail_latency << "\n";
  out << "expected rate:  <= " << budget << "\n";
  return 0;
}

int cmd_tune(const ParsedArgs& args, std::ostream& out) {
  auto system = make_workload(args, "tune");
  core::AdaptiveConfig config;
  config.percentile = parse_double(args, "percentile", 0.99);
  config.budget = parse_double(args, "budget", 0.02);
  config.max_trials = static_cast<int>(parse_u64(args, "trials", 6));
  const auto outcome = core::adapt_single_r(*system, config);
  for (const auto& trial : outcome.trials) {
    out << "trial " << trial.index << ": "
        << core::policy_to_line(trial.policy)
        << "  predicted=" << trial.predicted_tail
        << "  actual=" << trial.actual_tail
        << "  rate=" << trial.measured_reissue_rate << "\n";
  }
  out << "policy:    " << core::policy_to_line(outcome.policy) << "\n";
  out << "tail:      " << outcome.final_tail() << "\n";
  out << "converged: " << (outcome.converged ? "yes" : "no") << "\n";
  return 0;
}

int cmd_evaluate(const ParsedArgs& args, std::ostream& out) {
  const std::string policy_line = require_value(args, "policy", "evaluate");
  const auto policy = core::policy_from_line(policy_line);
  const double k = parse_double(args, "percentile", 0.99);
  auto system = make_workload(args, "evaluate");
  const auto eval = sim::evaluate_policy(*system, policy, k);
  out << "policy:       " << core::policy_to_line(policy) << "\n";
  out << "tail:         " << eval.tail_latency << "\n";
  out << "reissue rate: " << eval.reissue_rate << "\n";
  out << "remediation:  " << eval.remediation_rate << "\n";
  out << "utilization:  " << eval.utilization << "\n";
  return 0;
}

/// Builds the ETA-printing progress callback shared by local and shard
/// sweeps.  `err_mutex` serializes worker threads onto the stream.
std::function<void(std::size_t, std::size_t)> make_progress(
    std::ostream& err, std::mutex& err_mutex) {
  const auto start = std::chrono::steady_clock::now();
  return [&err, &err_mutex, start](std::size_t done, std::size_t total) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double eta =
        done > 0 ? elapsed * static_cast<double>(total - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::lock_guard lock(err_mutex);
    err << "progress: " << done << "/" << total << " cells, "
        << static_cast<std::uint64_t>(elapsed) << "s elapsed, eta "
        << static_cast<std::uint64_t>(eta) << "s\n";
  };
}

int cmd_sweep(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  const auto& registry = exp::ScenarioRegistry::built_in();
  if (args.has("list")) {
    out << "scenarios:\n";
    for (const auto& spec : registry.scenarios()) {
      out << "  " << spec.name << "  (" << exp::to_string(spec.kind) << ", "
          << spec.policies.size() << " policies)\n";
    }
    out << "catalogs:\n";
    for (const auto& catalog : registry.catalogs()) {
      out << "  " << catalog.name << " =";
      for (const auto& member : catalog.members) out << " " << member;
      out << "\n";
    }
    return 0;
  }

  std::vector<exp::ScenarioSpec> scenarios;
  if (args.has("spec")) {
    scenarios.push_back(
        exp::parse_scenario(require_value(args, "spec", "sweep")));
  }
  if (args.has("scenarios")) {
    const auto resolved =
        registry.resolve(require_value(args, "scenarios", "sweep"));
    scenarios.insert(scenarios.end(), resolved.begin(), resolved.end());
  }
  if (scenarios.empty()) {
    throw std::runtime_error("sweep requires --scenarios or --spec");
  }

  // Deep-tail scaling: override every resolved scenario's per-replication
  // query count (and warmup) from the command line, so p99.9 cells can be
  // run at 10^6 queries without editing specs.
  if (args.has("queries") || args.has("warmup")) {
    const auto queries =
        static_cast<std::size_t>(parse_u64(args, "queries", 0));
    const auto warmup = static_cast<std::size_t>(parse_u64(args, "warmup", 0));
    if (args.has("queries") && queries == 0) {
      throw std::runtime_error("--queries must be > 0");
    }
    for (auto& spec : scenarios) {
      if (args.has("queries")) {
        spec.queries = queries;
        // Keep the conventional 10% warmup unless explicitly overridden.
        if (!args.has("warmup")) spec.warmup = queries / 10;
      }
      if (args.has("warmup")) spec.warmup = warmup;
      if (spec.warmup >= spec.queries) {
        throw std::runtime_error(
            "--warmup must be < queries (scenario '" + spec.name + "' has " +
            std::to_string(spec.queries) + " queries, warmup " +
            std::to_string(spec.warmup) + ")");
      }
    }
  }

  // Replace every resolved scenario's policy grid from the command line,
  // so a registry scenario can be re-swept under e.g. optimal:* policies
  // without an inline spec.
  if (args.has("policies")) {
    std::vector<exp::PolicySpec> grid;
    for (const auto& entry :
         split_commas(require_value(args, "policies", "sweep"))) {
      grid.push_back(exp::parse_policy_spec(entry));
    }
    if (grid.empty()) {
      throw std::runtime_error("--policies needs at least one policy spec");
    }
    for (auto& spec : scenarios) spec.policies = grid;
  }

  exp::SweepOptions options;
  options.replications =
      static_cast<std::size_t>(parse_u64(args, "replications", 8));
  options.threads = static_cast<std::size_t>(parse_u64(args, "threads", 1));
  options.seed = parse_seed(args, 0x5eed);
  options.percentile = parse_double(args, "percentile", 0.0);
  if (args.has("percentile") &&
      !(options.percentile > 0.0 && options.percentile < 1.0)) {
    throw std::runtime_error("--percentile must be in (0,1)");
  }
  // Completion-order streaming accumulators are the default; --metric-mode
  // selects the replay-order streaming reference or exact sorted-log
  // percentiles (--full-logs is the legacy spelling of full).
  if (args.has("metric-mode")) {
    const std::string mode = require_value(args, "metric-mode", "sweep");
    if (mode == "completion") {
      options.log_mode = core::LogMode::kStreamingUnordered;
    } else if (mode == "replay") {
      options.log_mode = core::LogMode::kStreaming;
    } else if (mode == "full") {
      options.log_mode = core::LogMode::kFull;
    } else {
      throw std::runtime_error(
          "--metric-mode must be completion|replay|full (got '" + mode + "')");
    }
    if (args.has("full-logs") && options.log_mode != core::LogMode::kFull) {
      throw std::runtime_error(
          "sweep: --full-logs contradicts --metric-mode " + mode);
    }
  } else if (args.has("full-logs")) {
    options.log_mode = core::LogMode::kFull;
  }

  // Observability flags.  All of them are passive diagnostics: the sweep
  // CSV on stdout / --output stays byte-identical with any combination.
  const bool want_trace = args.has("trace");
  const bool want_trace_bin = args.has("trace-bin");
  const bool want_timeseries = args.has("timeseries");
  const bool want_stats = args.has("stats");
  const bool want_progress = args.has("progress");
#if !REISSUE_OBS_ENABLED
  // The event-stream observers are dead code in this build: the simulator
  // never calls their hooks, so a "trace" would be an empty document.
  // Reject up front instead of writing one.
  if (want_trace || want_trace_bin || want_timeseries) {
    throw std::runtime_error(
        "sweep: --trace/--trace-bin/--timeseries need observability "
        "compiled in (this binary was built with -DREISSUE_OBS=OFF)");
  }
#endif
  if (args.has("trace-capacity") && !want_trace_bin) {
    throw std::runtime_error("--trace-capacity requires --trace-bin");
  }
  if (args.has("window") && !want_timeseries) {
    throw std::runtime_error("--window requires --timeseries");
  }
  std::mutex err_mutex;

  // Distributed mode: run one shard of the sweep and emit the raw
  // replication CSV + manifest for `reissue_cli merge`, checkpointing
  // completed cells to a journal so a killed shard resumes for free.
  if (args.has("shard") || args.has("raw-output")) {
    if (!args.has("raw-output")) {
      throw std::runtime_error("sweep --shard requires --raw-output");
    }
    if (args.has("output")) {
      throw std::runtime_error(
          "sweep: --output and --raw-output are mutually exclusive "
          "(merge the raw shards to get the aggregated CSV)");
    }
    if (want_trace || want_trace_bin || want_timeseries) {
      throw std::runtime_error(
          "sweep: --trace/--trace-bin/--timeseries are not supported in "
          "shard mode (trace a local single-threaded sweep instead)");
    }
    dist::WorkerOptions worker;
    if (args.has("shard")) {
      worker.shard = dist::parse_shard(require_value(args, "shard", "sweep"));
    }
    worker.raw_output = require_value(args, "raw-output", "sweep");
    if (args.has("journal")) {
      worker.journal = require_value(args, "journal", "sweep");
    }
    worker.sweep = options;
    worker.max_new_cells =
        static_cast<std::size_t>(parse_u64(args, "max-cells", 0));
    if (want_progress) worker.on_cell_done = make_progress(err, err_mutex);
    // Per-cell wall-clock timings land in a side file next to the raw CSV
    // -- never inside it, so the manifest hash is unaffected.
    if (want_stats) worker.timings_output = worker.raw_output + ".timings.csv";
    const auto report = dist::run_shard(scenarios, worker);
    out << "shard " << dist::to_string(report.manifest.shard) << ": ";
    if (report.finished) {
      out << report.cells_total << " cells (" << report.manifest.rows
          << " rows) -> " << worker.raw_output;
      if (report.cells_resumed > 0) {
        out << " (" << report.cells_resumed << " resumed from journal)";
      }
      out << "\n";
    } else {
      out << "checkpointed " << (report.cells_resumed + report.cells_run)
          << "/" << report.cells_total
          << " cells; rerun the same command to resume\n";
    }
    return 0;
  }

  // Local mode: wire up the requested observers.  The trace and
  // time-series observers keep per-run state, so they need a single
  // deterministic event stream -- hence the --threads 1 requirement.
  if ((want_trace || want_trace_bin || want_timeseries) &&
      options.threads != 1) {
    throw std::runtime_error(
        "sweep: --trace/--trace-bin/--timeseries require --threads 1");
  }
  obs::MultiObserver multi;
  std::ofstream trace_file;
  std::optional<obs::TraceObserver> tracer;
  if (want_trace) {
    const std::string path = require_value(args, "trace", "sweep");
    trace_file.open(path, std::ios::binary);
    if (!trace_file) {
      throw std::runtime_error("cannot open trace file: " + path);
    }
    tracer.emplace(trace_file);
    multi.add(&*tracer);
  }
  std::optional<obs::RingTraceObserver> ring;
  std::string trace_bin_path;
  if (want_trace_bin) {
    trace_bin_path = require_value(args, "trace-bin", "sweep");
    const auto capacity = static_cast<std::size_t>(
        parse_u64(args, "trace-capacity", std::size_t{1} << 20));
    if (capacity == 0) {
      throw std::runtime_error("--trace-capacity must be > 0");
    }
    ring.emplace(capacity);
    multi.add(&*ring);
  }
  std::optional<obs::TimeSeriesObserver> series;
  std::string timeseries_path;
  if (want_timeseries) {
    timeseries_path = require_value(args, "timeseries", "sweep");
    obs::TimeSeriesOptions ts;
    ts.window = parse_double(args, "window", 0.0);
    if (!(ts.window > 0.0)) {
      throw std::runtime_error("--timeseries requires --window > 0");
    }
    if (options.percentile > 0.0) ts.percentile = options.percentile;
    series.emplace(ts);
    multi.add(&*series);
  }
  obs::CountingObserver counting;
  obs::PhaseTimers timers;
  if (want_stats) {
    multi.add(&counting);
    options.timers = &timers;
    // One stderr line per cell as it completes, so working-set regressions
    // (heap/scan pops, stage checks/retired) are visible per cell without
    // a profiler.  Counters cover every run the cell performed, training
    // runs included; they are all-zero under -DREISSUE_OBS=OFF.
    options.on_cell_stats = [&err, &err_mutex](const exp::CellResult& cell,
                                               const sim::RunCounters& c,
                                               std::uint64_t runs) {
      std::lock_guard lock(err_mutex);
      err << "cell " << cell.scenario << " " << cell.policy << ": runs "
          << runs << " heap_pops " << c.heap_pops << " scan_pops "
          << c.scan_pops << " stage_checks " << c.stage_checks
          << " stage_retired " << c.stage_retired << " reissues_issued "
          << c.reissues_issued << "\n";
    };
  }
  if (!multi.empty()) options.sim_observer = &multi;
  if (want_progress) options.on_cell_done = make_progress(err, err_mutex);

  const auto cells = exp::aggregate(exp::run_sweep(scenarios, options));

  if (tracer) {
    tracer->finish();
    trace_file.close();
    if (!trace_file) {
      throw std::runtime_error("error writing trace file");
    }
  }
  if (ring) {
    obs::write_trace_ring(trace_bin_path, ring->ring());
  }
  if (series) {
    std::ostringstream csv;
    series->write_csv(csv);
    dist::atomic_write_file(timeseries_path, csv.str());
  }
  if (want_stats) {
    err << "counters:\n"
        << obs::format_counters(counting.total(), counting.runs())
        << "timers:\n"
        << obs::format_timers(timers);
  }
  if (args.has("output")) {
    const std::string path = require_value(args, "output", "sweep");
    std::ostringstream csv;
    exp::write_csv(csv, cells);
    dist::atomic_write_file(path, csv.str());
    out << "wrote " << cells.size() << " cells to " << path << "\n";
  } else {
    exp::write_csv(out, cells);
  }
  return 0;
}

int cmd_trace_summarize(const ParsedArgs& args, std::ostream& out) {
  const std::string input = require_value(args, "input", "trace-summarize");
  out << obs::summarize_trace(obs::read_trace_ring(input));
  return 0;
}

int cmd_merge(const ParsedArgs& args, std::ostream& out) {
  const std::vector<std::string> paths =
      split_commas(require_value(args, "inputs", "merge"));
  if (paths.empty()) {
    throw std::runtime_error("merge --inputs needs at least one file");
  }

  const auto report = dist::merge_shards(paths);
  const auto cells = exp::aggregate(report.cells);
  if (args.has("output")) {
    const std::string path = require_value(args, "output", "merge");
    std::ostringstream csv;
    exp::write_csv(csv, cells);
    dist::atomic_write_file(path, csv.str());
    out << "merged " << report.shards << " shards (" << report.rows
        << " rows) into " << cells.size() << " cells -> " << path << "\n";
  } else {
    exp::write_csv(out, cells);
  }
  return 0;
}

int cmd_loadgen(const ParsedArgs& args, std::ostream& out,
                std::ostream& err) {
  const std::string backend_name = require_value(args, "backend", "loadgen");
  const double rate = parse_double(args, "rate", 0.0);
  if (!(rate > 0.0)) {
    throw std::runtime_error("loadgen requires --rate > 0 (queries/sec)");
  }
  const auto requests = parse_u64(args, "requests", 0);
  if (args.has("requests") && requests == 0) {
    throw std::runtime_error("--requests must be > 0");
  }
  if (args.has("requests") && args.has("duration")) {
    throw std::runtime_error(
        "loadgen: --requests and --duration are mutually exclusive");
  }
  const double duration_s =
      requests > 0 ? 0.0 : parse_double(args, "duration", 5.0);
  if (requests == 0 && !(duration_s > 0.0)) {
    throw std::runtime_error("--duration must be > 0 seconds");
  }

  const exp::PolicySpec spec =
      exp::parse_policy_spec(args.get("policy", "none"));
  if (spec.kind != exp::PolicySpec::Kind::kFixed) {
    throw std::runtime_error(
        "loadgen --policy must be a fixed spec (none|immediate|d:|r:|multi:);"
        " tuned/optimal policies belong to the sweep pipeline");
  }

  const std::uint64_t seed = parse_seed(args, 0x10ad);
  const double percentile = parse_double(args, "percentile", 0.99);
  if (!(percentile > 0.0 && percentile < 1.0)) {
    throw std::runtime_error("--percentile must be in (0,1)");
  }

  systems::LiveBackendOptions backend_options;
  backend_options.scale = parse_double(args, "scale", 1.0);
  backend_options.seed = seed;
  const auto backend = systems::make_live_backend(backend_name,
                                                  backend_options);

  const auto workers = static_cast<std::size_t>(parse_u64(args, "workers", 0));
  runtime::WallClock clock;
  runtime::ThreadPool pool(workers);

  std::optional<obs::RuntimeRingTracer> tracer;
  std::string trace_bin_path;
  if (args.has("trace-bin")) {
    trace_bin_path = require_value(args, "trace-bin", "loadgen");
    const auto capacity = static_cast<std::size_t>(
        parse_u64(args, "trace-capacity", std::size_t{1} << 20));
    if (capacity == 0) throw std::runtime_error("--trace-capacity must be > 0");
    tracer.emplace(capacity);
    tracer->push_run_begin(rate, seed,
                           static_cast<std::uint32_t>(pool.thread_count()));
  } else if (args.has("trace-capacity")) {
    throw std::runtime_error("--trace-capacity requires --trace-bin");
  }

  runtime::ReissueClientConfig config;
  config.seed = seed ^ 0xc011;
  config.latency_ring_capacity = static_cast<std::size_t>(
      parse_u64(args, "ring-capacity", std::size_t{1} << 20));
  if (tracer) config.sink = &*tracer;

  // The dispatch lambda outlives this scope inside the client, and the
  // client cannot exist before its own dispatch function: bridge with a
  // pointer filled in right after construction.  submit() is only called
  // below, long after the pointer is set.
  runtime::ReissueClient* client_ptr = nullptr;
  const systems::LiveBackend& work = *backend;
  runtime::DispatchFn dispatch = [&pool, &work, &client_ptr](
                                     std::uint64_t query_id, bool is_reissue) {
    pool.submit([&work, &client_ptr, query_id, is_reissue] {
      work.execute(query_id);
      client_ptr->on_response(query_id, is_reissue);
    });
  };
  runtime::ReissueClient client(clock, std::move(dispatch), spec.fixed,
                                config);
  client_ptr = &client;

  const bool want_timeseries = args.has("timeseries");
  if (args.has("window") && !want_timeseries) {
    throw std::runtime_error("loadgen: --window requires --timeseries");
  }
  std::optional<obs::RuntimeTimeSeriesSampler> sampler;
  if (want_timeseries || args.has("metrics-out")) {
    obs::RuntimeTimeSeriesOptions ts;
    ts.window_ms = parse_double(args, "window", 1000.0);
    if (!(ts.window_ms > 0.0)) {
      throw std::runtime_error("--window must be > 0 milliseconds");
    }
    ts.percentile = percentile;
    ts.pool = &pool;
    if (args.has("metrics-out")) {
      ts.metrics_out = require_value(args, "metrics-out", "loadgen");
    }
    sampler.emplace(clock, client, ts);
    sampler->start();
  }

  // Open-loop Poisson arrivals: inter-arrival gaps are exponential with
  // mean 1/rate, and the schedule never waits for responses — overload
  // shows up as queueing latency, exactly what a tail-latency harness
  // must not hide (closed-loop generators coordinate-omit it).
  stats::Xoshiro256 arrival_rng(seed ^ 0xa221);
  const double start_ms = clock.now_ms();
  const double deadline_ms =
      duration_s > 0.0 ? start_ms + duration_s * 1000.0 : 0.0;
  double next_ms = start_ms;
  std::uint64_t submitted = 0;
  for (;;) {
    if (requests > 0 && submitted >= requests) break;
    next_ms += -std::log(arrival_rng.uniform_pos()) * 1000.0 / rate;
    if (requests == 0 && next_ms >= deadline_ms) break;
    for (;;) {
      const double now = clock.now_ms();
      if (now >= next_ms) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(next_ms - now));
    }
    client.submit(submitted++);
  }
  const double submit_end_ms = clock.now_ms();

  // Drain: reissue queue first (no new copies after), then the executor
  // (in-flight work finishes), then any straggler responses.
  client.drain();
  pool.wait_idle();
  const double settle_deadline_ms = clock.now_ms() + 30000.0;
  while (client.stats().first_responses < submitted &&
         clock.now_ms() < settle_deadline_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.wait_idle();
  }
  const double end_ms = clock.now_ms();
  const runtime::ReissueClientStats final_stats = client.stats();
  if (final_stats.first_responses < submitted) {
    err << "warning: " << (submitted - final_stats.first_responses)
        << " requests never completed within the 30s settle timeout\n";
  }

  if (sampler) sampler->stop();
  std::vector<runtime::LatencySample> samples =
      sampler ? sampler->take_samples() : client.drain_samples();

  if (want_timeseries) {
    const std::string path = require_value(args, "timeseries", "loadgen");
    std::ostringstream csv;
    sampler->write_csv(csv);
    dist::atomic_write_file(path, csv.str());
  }
  const double wall_s = (end_ms - start_ms) / 1000.0;
  const double achieved =
      wall_s > 0.0 ? static_cast<double>(final_stats.first_responses) / wall_s
                   : 0.0;
  if (tracer) {
    tracer->push_run_end(end_ms - start_ms, achieved);
    tracer->write(trace_bin_path);
  }
  if (args.has("latency-log")) {
    const std::string path = require_value(args, "latency-log", "loadgen");
    std::ostringstream log;
    log << "# loadgen backend=" << backend->name() << " rate=" << rate
        << " policy=" << core::policy_to_line(spec.fixed) << " seed=" << seed
        << "\n";
    core::write_latency_log(log, runtime::latency_values(samples));
    dist::atomic_write_file(path, log.str());
  }

  out << "backend:        " << backend->name() << " (scale "
      << backend_options.scale << ", trace " << backend->trace_length()
      << " requests, " << pool.thread_count() << " workers)\n";
  // The cores note is part of the report contract: live numbers are only
  // meaningful relative to how many cores the arrival, reissue, worker and
  // sampler threads shared (on a single core, reissue copies compete with
  // primaries for CPU and hedging can only add load).
  out << "cores:          " << std::thread::hardware_concurrency()
      << " hardware threads shared by arrival + reissue + "
      << pool.thread_count()
      << " workers; on few-core hosts reissue copies contend with"
         " primaries, so tails here are a load reference, not a"
         " tail-reduction demo\n";
  out << "policy:         " << core::policy_to_line(spec.fixed) << "\n";
  out << "offered rate:   " << rate << " q/s\n";
  out << "submitted:      " << submitted << " in "
      << (submit_end_ms - start_ms) / 1000.0 << " s\n";
  out << "completed:      " << final_stats.first_responses << " in " << wall_s
      << " s (achieved " << achieved << " q/s)\n";
  if (!samples.empty()) {
    // Exact nearest-rank percentiles over the retained samples; the ring
    // may have dropped the oldest under overload (reported below), in
    // which case the digest line's P² estimates still cover every sample.
    auto values = runtime::latency_values(samples);
    std::uint64_t reissued_wins = 0;
    std::uint64_t reissued_requests = 0;
    for (const runtime::LatencySample& s : samples) {
      reissued_requests += s.was_reissued ? 1 : 0;
      reissued_wins += s.win_reissue ? 1 : 0;
    }
    double sum = 0.0;
    for (const double v : values) sum += v;
    out << "latency ms:     mean " << sum / static_cast<double>(values.size())
        << "  p50 " << stats::percentile(values, 50.0) << "  p90 "
        << stats::percentile(values, 90.0) << "  p99 "
        << stats::percentile(values, 99.0) << "  p999 "
        << stats::percentile(values, 99.9) << "  max "
        << *std::max_element(values.begin(), values.end()) << "  (n="
        << values.size() << ")\n";
    out << "reissued:       " << reissued_requests
        << " requests, reissue copy won " << reissued_wins << "\n";
  }
  out << "latency digest: p50 " << final_stats.latency_p50_ms << "  p99 "
      << final_stats.latency_p99_ms << "  p999 " << final_stats.latency_p999_ms
      << "  (P2 streaming, n=" << final_stats.latency_samples << ")\n";
  out << "reissues:       issued " << final_stats.reissues_issued
      << "  suppressed(completed) " << final_stats.reissues_suppressed_completed
      << "  suppressed(coin) " << final_stats.reissues_suppressed_coin << "\n";
  out << "sample ring:    recorded " << final_stats.latency_ring_recorded
      << "  dropped " << final_stats.latency_ring_dropped << "\n";
  if (sampler) out << "windows:        " << sampler->windows() << "\n";
  if (tracer) {
    out << "trace events:   " << tracer->total_pushed() << " -> "
        << trace_bin_path << "\n";
  }

  // Final exposition after the run settles, so a scrape sees the totals.
  if (args.has("metrics-out")) {
    runtime::ThreadPoolStats pool_stats = pool.stats();
    obs::write_text_atomic(require_value(args, "metrics-out", "loadgen"),
                           obs::format_prometheus(final_stats, &pool_stats));
  }
  return 0;
}

}  // namespace

std::string ParsedArgs::get(const std::string& name,
                            const std::string& fallback) const {
  std::string value = fallback;
  for (const auto& [key, val] : flags) {
    if (key == name) value = val;
  }
  return value;
}

bool ParsedArgs::has(const std::string& name) const {
  for (const auto& [key, val] : flags) {
    if (key == name) return true;
  }
  return false;
}

ParsedArgs parse_args(const std::vector<std::string>& args) {
  ParsedArgs parsed;
  std::size_t i = 0;
  if (i < args.size() && args[i].rfind("--", 0) != 0) {
    parsed.command = args[i++];
  }
  while (i < args.size()) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --flag, got '" + token + "'");
    }
    const std::string name = token.substr(2);
    if (name.empty()) throw std::runtime_error("empty flag name");
    std::string value;
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      value = args[i + 1];
      i += 2;
    } else {
      i += 1;
    }
    parsed.flags.emplace_back(name, std::move(value));
  }
  return parsed;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    const ParsedArgs parsed = parse_args(args);
    if (parsed.command.empty() || parsed.command == "help") {
      out << kUsage;
      return 0;
    }
    if (parsed.command == "optimize") return cmd_optimize(parsed, out);
    if (parsed.command == "tune") return cmd_tune(parsed, out);
    if (parsed.command == "evaluate") return cmd_evaluate(parsed, out);
    if (parsed.command == "sweep") return cmd_sweep(parsed, out, err);
    if (parsed.command == "merge") return cmd_merge(parsed, out);
    if (parsed.command == "trace-summarize") {
      return cmd_trace_summarize(parsed, out);
    }
    if (parsed.command == "loadgen") return cmd_loadgen(parsed, out, err);
    err << "unknown command: " << parsed.command << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace reissue::cli
